"""ora analogue: optical ray tracing (divide/square-root bound).

SPEC's ora traces rays through an optical system; each ray needs square
roots and divides with almost no memory traffic.  The iterative divide
unit (19 cycles, shared with square root) is the bottleneck, so better
issue policies barely help — Table 6: 1.906 / 1.780 / 1.701, the
flattest improvement in the suite next to alvinn — and Figure 9(f)'s
divide-latency sweep moves ora most of all.

``scale`` is the number of rays.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check


@workload(
    "ora",
    suite="fp",
    default_scale=1500,
    description="ray-surface intersections: sqrt + divide per ray",
)
def build(scale: int) -> Program:
    if scale < 4:
        raise ValueError("ora needs at least 4 rays")
    scale += scale % 2  # two rays retire per loop iteration
    rng = Lcg(seed=0x04A04A)
    asm = Assembler()

    asm.data_label("rays")  # per ray: origin offset, direction (2 doubles)
    asm.float_double(
        *[rng.next_float(-1.0, 1.0) for _ in range(2 * scale)]
    )
    asm.data_label("hits")
    asm.float_double(*([0.0] * 8))
    asm.data_label("ts")
    asm.float_double(*([0.0] * scale))
    asm.data_label("cradius")
    asm.float_double(4.0)
    asm.data_label("cone")
    asm.float_double(1.0)
    asm.data_label("chalf")
    asm.float_double(0.5)

    asm.la("t0", "cradius")
    asm.ldc1("f24", 0, "t0")
    asm.la("t0", "cone")
    asm.ldc1("f26", 0, "t0")
    asm.la("t0", "chalf")
    asm.ldc1("f22", 0, "t0")
    asm.la("s0", "rays")
    asm.la("s2", "hits")
    asm.la("s3", "ts")
    asm.li("s1", scale)
    asm.mtc1("zero", "f28")  # hit accumulator
    asm.cvt_d_w("f28", "f28")

    # Two rays are software-pipelined per iteration (as a scheduling
    # compiler would), and the hit parameters are *stored* rather than
    # folded into an accumulator, so the in-order issue stream never
    # blocks on a chain-ending add: the iterative divide unit alone sets
    # the pace.  That is what makes ora nearly insensitive to issue
    # policy in Table 6 while being the big mover in Figure 9(f)'s
    # divide-latency sweep.
    asm.label("ray_loop")
    asm.ldc1("f0", 0, "s0")   # A: b
    asm.ldc1("f2", 8, "s0")   # A: d
    asm.ldc1("f4", 16, "s0")  # B: b
    asm.ldc1("f6", 24, "s0")  # B: d
    asm.mul_d("f8", "f0", "f0")
    asm.mul_d("f16", "f4", "f4")
    asm.mul_d("f10", "f2", "f2")
    asm.mul_d("f18", "f6", "f6")
    asm.sub_d("f8", "f8", "f10")
    asm.sub_d("f16", "f16", "f18")
    asm.add_d("f8", "f8", "f24")
    asm.add_d("f16", "f16", "f24")
    asm.abs_d("f8", "f8")
    asm.abs_d("f16", "f16")
    asm.sqrt_d("f12", "f8")
    asm.sqrt_d("f20", "f16")
    asm.sub_d("f12", "f12", "f0")
    asm.sub_d("f20", "f20", "f4")
    asm.add_d("f10", "f10", "f26")
    asm.add_d("f18", "f18", "f26")
    asm.div_d("f14", "f12", "f10")
    asm.div_d("f30", "f20", "f18")
    asm.sdc1("f14", 0, "s3")
    asm.sdc1("f30", 8, "s3")
    asm.addiu("s3", "s3", 16)
    asm.addiu("s0", "s0", 32)
    asm.addiu("s1", "s1", -2)
    asm.bne("s1", "zero", "ray_loop")

    # Second pass: surface-interaction polynomial over the stored hit
    # parameters (multiply/add bound, no divides).
    asm.la("s3", "ts")
    asm.li("s1", scale)
    asm.label("shade_loop")
    asm.ldc1("f0", 0, "s3")
    asm.ldc1("f2", 8, "s3")
    asm.mul_d("f4", "f0", "f0")
    asm.mul_d("f6", "f2", "f2")
    asm.add_d("f4", "f4", "f26")
    asm.add_d("f6", "f6", "f26")
    asm.mul_d("f8", "f4", "f22")
    asm.mul_d("f10", "f6", "f22")
    asm.add_d("f28", "f28", "f8")
    asm.add_d("f28", "f28", "f10")
    asm.addiu("s3", "s3", 16)
    asm.addiu("s1", "s1", -2)
    asm.bne("s1", "zero", "shade_loop")

    asm.sdc1("f28", 0, "s2")
    asm.halt()
    return build_and_check(asm)
