"""su2cor analogue: SU(2) lattice gauge theory (complex linear algebra).

SPEC's su2cor computes quark-propagator correlations on a 4-D lattice;
the hot loops multiply complex 2x2 matrices into vectors — a balanced
stream of multiplies and adds (four multiplies and two adds per complex
product) with regular lattice strides.  Table 6: 1.973 in-order ->
1.706 single OOC -> 1.557 dual.

``scale`` is the number of lattice sites per sweep.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_SWEEPS = 2


@workload(
    "su2cor",
    suite="fp",
    default_scale=420,
    description="complex 2x2 matrix-vector products over a lattice",
)
def build(scale: int) -> Program:
    if scale < 4:
        raise ValueError("su2cor needs at least 4 sites")
    rng = Lcg(seed=0x50C042)
    asm = Assembler()

    # Per site: a complex 2x2 link matrix (8 doubles) and a complex
    # 2-vector (4 doubles); result vectors are written back in place.
    asm.data_label("links")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(8 * scale)])
    asm.data_label("vecs")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(4 * scale)])

    asm.li("s7", _SWEEPS)
    asm.label("sweep")
    asm.la("s0", "links")
    asm.la("s1", "vecs")
    asm.li("s2", scale)

    asm.label("site_loop")
    # load the vector (v0r, v0i, v1r, v1i)
    asm.ldc1("f0", 0, "s1")
    asm.ldc1("f2", 8, "s1")
    asm.ldc1("f4", 16, "s1")
    asm.ldc1("f6", 24, "s1")
    # row 0 of the link matrix: (m00r, m00i, m01r, m01i)
    asm.ldc1("f8", 0, "s0")
    asm.ldc1("f10", 8, "s0")
    asm.ldc1("f12", 16, "s0")
    asm.ldc1("f14", 24, "s0")
    # w0 = m00 * v0 + m01 * v1   (complex)
    asm.mul_d("f16", "f8", "f0")
    asm.mul_d("f18", "f10", "f2")
    asm.sub_d("f16", "f16", "f18")  # real part of m00*v0
    asm.mul_d("f20", "f8", "f2")
    asm.mul_d("f22", "f10", "f0")
    asm.add_d("f20", "f20", "f22")  # imag part of m00*v0
    asm.mul_d("f24", "f12", "f4")
    asm.mul_d("f26", "f14", "f6")
    asm.sub_d("f24", "f24", "f26")
    asm.add_d("f16", "f16", "f24")  # w0r
    asm.mul_d("f24", "f12", "f6")
    asm.mul_d("f26", "f14", "f4")
    asm.add_d("f24", "f24", "f26")
    asm.add_d("f20", "f20", "f24")  # w0i
    # row 1 of the link matrix
    asm.ldc1("f8", 32, "s0")
    asm.ldc1("f10", 40, "s0")
    asm.ldc1("f12", 48, "s0")
    asm.ldc1("f14", 56, "s0")
    # w1 = m10 * v0 + m11 * v1   (complex)
    asm.mul_d("f24", "f8", "f0")
    asm.mul_d("f26", "f10", "f2")
    asm.sub_d("f24", "f24", "f26")
    asm.mul_d("f28", "f12", "f4")
    asm.mul_d("f30", "f14", "f6")
    asm.sub_d("f28", "f28", "f30")
    asm.add_d("f24", "f24", "f28")  # w1r
    asm.mul_d("f28", "f8", "f2")
    asm.mul_d("f30", "f10", "f0")
    asm.add_d("f28", "f28", "f30")
    asm.mul_d("f0", "f12", "f6")
    asm.mul_d("f2", "f14", "f4")
    asm.add_d("f0", "f0", "f2")
    asm.add_d("f28", "f28", "f0")  # w1i
    # store the updated vector
    asm.sdc1("f16", 0, "s1")
    asm.sdc1("f20", 8, "s1")
    asm.sdc1("f24", 16, "s1")
    asm.sdc1("f28", 24, "s1")
    asm.addiu("s0", "s0", 64)
    asm.addiu("s1", "s1", 32)
    asm.addiu("s2", "s2", -1)
    asm.bne("s2", "zero", "site_loop")
    asm.addiu("s7", "s7", -1)
    asm.bne("s7", "zero", "sweep")
    asm.halt()
    return build_and_check(asm)
