"""The asyncio HTTP front end: ``aurora-sim serve``.

A deliberately small HTTP/1.1 server on stdlib asyncio streams (no new
dependencies): request line + headers + Content-Length body, keep-alive
connections, JSON in and out.  Three routes:

* ``POST /query`` — one design-space query (see
  :mod:`repro.serve.protocol`); answers from the memo store or through
  the :class:`~repro.serve.batcher.QueryBatcher`.
* ``GET /metrics`` — the full ``serve.*`` MetricsRegistry snapshot as
  JSON, with p50/p99 latency gauges derived at scrape time from the
  ``serve.latency_seconds`` le-bucket histogram
  (:meth:`~repro.telemetry.metrics.Histogram.quantile` — the same
  derivation loadgen reports, so the two agree by construction);
  ``GET /metrics?format=prom`` renders the registry in Prometheus text
  exposition format instead (:mod:`repro.telemetry.prom`).
* ``GET /healthz`` — liveness plus the in-flight gauge.
* ``GET /readyz`` — readiness: 503 until the listener is up and the
  batch dispatcher can accept work, 200 after.
* ``GET /timeseries`` — the in-process sampling ring's recent samples
  (present when ``--sample-interval`` is positive).

Every request runs under a ``request`` span with nested ``validate``,
``batch_wait``, ``simulate_batch`` (recorded inside ``simulate_many``)
and ``store`` children, grafted into the same
:class:`~repro.telemetry.tracing.SpanTracer` the sweep runner uses;
``--trace`` exports the Chrome trace on shutdown.

Shutdown is the PR 6 contract via the shared
:class:`~repro.robustness.signals.GracefulSignals`: the first
SIGINT/SIGTERM stops accepting connections, drains in-flight batches,
flushes the memo store and exits 5 (``EXIT_INTERRUPTED``); a second
signal aborts hard.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from dataclasses import dataclass, field

from repro.experiments.exit_codes import EXIT_INTERRUPTED, EXIT_OK
from repro.robustness.signals import GracefulSignals
from repro.serve.batcher import QueryBatcher
from repro.serve.protocol import (
    QueryError,
    parse_query,
    workload_error_text,
)
from repro.serve.store import MemoStore
from repro.telemetry import tracing
from repro.telemetry.logging import get_logger
from repro.telemetry.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.telemetry.prom import render_prom
from repro.telemetry.timeseries import TimeSeriesRing, sample_registry

from repro.workloads.registry import WorkloadError

_log = get_logger("serve")

#: ``/timeseries`` returns at most this many trailing ring samples.
TIMESERIES_SCRAPE_LIMIT = 256
#: Request bodies past this are rejected up front (64 MiB of JSON is an
#: attack or a bug, not a machine configuration).
MAX_BODY_BYTES = 1 << 20

_JSON_HEADERS = "Content-Type: application/json\r\n"


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class ServeConfig:
    """Everything ``aurora-sim serve`` needs to run."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced on stdout
    jobs: int = 1
    window: float = 0.010
    kernel: str | None = None
    store_root: str = "results/.sim_memo"
    trace_out: str | None = None
    quiet: bool = False
    extra_metrics: dict = field(default_factory=dict)
    #: Registry-sampling interval (seconds) for the time-series ring;
    #: 0 disables sampling entirely (no ring, no task — zero overhead).
    sample_interval: float = 1.0
    #: Ring capacity (samples kept in memory).
    ring_capacity: int = 2048
    #: Optional JSONL persistence path for the ring (crash-tolerant;
    #: reloaded on restart so history survives).
    ring_out: str | None = None


class ServeApp:
    """Route table + per-request accounting over one shared batcher."""

    def __init__(
        self,
        store: MemoStore,
        batcher: QueryBatcher,
        metrics: MetricsRegistry,
        *,
        ring: TimeSeriesRing | None = None,
    ) -> None:
        self.store = store
        self.batcher = batcher
        self.metrics = metrics
        self.ring = ring
        #: Readiness: False until the listener is up and the batch
        #: dispatcher can accept work; ``/readyz`` answers 503 before.
        self.ready = False
        metrics.counter("serve.requests")
        metrics.counter("serve.errors")
        metrics.gauge("serve.in_flight").set(0)
        metrics.histogram("serve.latency_seconds", LATENCY_BUCKETS)

    def mark_ready(self) -> None:
        self.ready = True

    # ------------------------------------------------------------- routes

    async def handle_query(self, body: bytes) -> tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body is not valid JSON: {error}"}
        try:
            with tracing.span("validate", "serve"):
                query = parse_query(payload)
        except QueryError as error:
            return 400, {"error": str(error)}
        except WorkloadError as error:
            return 400, {"error": workload_error_text(error)}
        stats, meta = await self.batcher.submit(query)
        return 200, {
            "workload": query.workload,
            "factor": query.factor,
            "fingerprint": query.fingerprint,
            "stats": stats.to_dict(),
            **meta,
        }

    def refresh_gauges(self) -> None:
        """Scrape-time derived gauges (hit rate, latency quantiles)."""
        queries = self.metrics.counter("serve.queries").value
        hits = self.metrics.counter("serve.memo.hits").value
        self.metrics.gauge("serve.memo.hit_rate").set(
            hits / queries if queries else 0.0
        )
        latency = self.metrics.histogram("serve.latency_seconds")
        self.metrics.gauge("serve.latency_p50_seconds").set(
            latency.quantile(0.50)
        )
        self.metrics.gauge("serve.latency_p99_seconds").set(
            latency.quantile(0.99)
        )
        for name, value in self.store.snapshot().items():
            self.metrics.gauge(f"serve.store.{name}").set(value)

    def metrics_payload(self) -> dict:
        self.refresh_gauges()
        return self.metrics.as_dict()

    def metrics_prom(self) -> str:
        self.refresh_gauges()
        return render_prom(self.metrics)

    def healthz_payload(self) -> dict:
        return {
            "status": "ok",
            "in_flight": self.metrics.gauge("serve.in_flight").value or 0,
        }

    def readyz_payload(self) -> tuple[int, dict]:
        if self.ready:
            return 200, {"status": "ready"}
        return 503, {"status": "starting"}

    def timeseries_payload(self) -> dict:
        if self.ring is None:
            return {"sampling": False, "samples": []}
        samples = self.ring.samples()[-TIMESERIES_SCRAPE_LIMIT:]
        return {"sampling": True, "samples": samples}

    # --------------------------------------------------------- connection

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._route(method, path, query, body)
                await _write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive readers; ending the
            # task cleanly here keeps shutdown quiet (re-raising would
            # make the streams connection callback log every one).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                pass

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, dict | str]:
        in_flight = self.metrics.gauge("serve.in_flight")
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.metrics.counter("serve.requests").inc()
        in_flight.set((in_flight.value or 0) + 1)
        try:
            with tracing.span("request", "serve", method=method, path=path):
                if path == "/query" and method == "POST":
                    status, payload = await self.handle_query(body)
                elif path == "/metrics" and method == "GET":
                    if "format=prom" in query.split("&"):
                        status, payload = 200, self.metrics_prom()
                    else:
                        status, payload = 200, self.metrics_payload()
                elif path == "/healthz" and method == "GET":
                    status, payload = 200, self.healthz_payload()
                elif path == "/readyz" and method == "GET":
                    status, payload = self.readyz_payload()
                elif path == "/timeseries" and method == "GET":
                    status, payload = 200, self.timeseries_payload()
                else:
                    status, payload = 404, {
                        "error": f"no route for {method} {path}"
                    }
        except Exception as error:  # noqa: BLE001 - a 500, not a crash
            status, payload = 500, {
                "error": f"{type(error).__name__}: {error}"
            }
            _log.error(
                "serve.request_failed", method=method, path=path,
                exception=type(error).__name__, detail=str(error),
            )
        finally:
            in_flight.set((in_flight.value or 1) - 1)
        elapsed = loop.time() - started
        self.metrics.histogram("serve.latency_seconds").observe(elapsed)
        if status >= 400:
            self.metrics.counter("serve.errors").inc()
        return status, payload


# ------------------------------------------------------------- HTTP wire


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, str, dict, bytes] | None:
    """One HTTP/1.1 request, or None at a clean connection close."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, OSError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) < 2:
        return None
    method, raw_path = parts[0].upper(), parts[1]
    path, _, query = raw_path.partition("?")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = 0
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        length = 0
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = await reader.readexactly(length) if length else b""
    return method, path, query, headers, body


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    500: "Internal Server Error", 503: "Service Unavailable",
}


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | str,
    keep_alive: bool,
) -> None:
    if isinstance(payload, str):  # pre-rendered text (Prometheus scrape)
        body = payload.encode("utf-8")
        content_type = "Content-Type: text/plain; version=0.0.4\r\n"
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        content_type = _JSON_HEADERS
    reason = _STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"{content_type}"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# --------------------------------------------------------------- runners


async def run_server(
    config: ServeConfig,
    *,
    stream=None,
    ready: "threading.Event | None" = None,
    stop_event: asyncio.Event | None = None,
    port_holder: dict | None = None,
) -> int:
    """Serve until the first SIGINT/SIGTERM (or ``stop_event``); drain,
    flush, and return the exit code (5 when signalled, 0 otherwise)."""
    out = stream if stream is not None else sys.stdout
    loop = asyncio.get_running_loop()
    stop = stop_event if stop_event is not None else asyncio.Event()

    tracer = None
    if config.trace_out:
        tracer = tracing.SpanTracer()
        tracing.set_tracer(tracer)

    metrics = MetricsRegistry()
    store = MemoStore(config.store_root, stream=out if not config.quiet else None)
    batcher = QueryBatcher(
        store,
        metrics,
        window=config.window,
        kernel=config.kernel,
        jobs=config.jobs,
    )
    ring: TimeSeriesRing | None = None
    if config.sample_interval > 0:
        if config.ring_out:
            # Crash-tolerant: reload whatever history survived, keep
            # appending to the same JSONL file.
            ring = TimeSeriesRing.load(
                config.ring_out,
                capacity=config.ring_capacity,
                persist=True,
            )
        else:
            ring = TimeSeriesRing(config.ring_capacity)
    app = ServeApp(store, batcher, metrics, ring=ring)

    def _notify(name: str) -> None:
        loop.call_soon_threadsafe(stop.set)
        _log.warning("serve.signal", signal=name)
        if not config.quiet:
            print(
                f"warning: received {name}; draining in-flight batches "
                "and flushing the memo store (repeat to abort hard)",
                file=out,
            )

    async def _sample_loop() -> None:
        while True:
            await asyncio.sleep(config.sample_interval)
            app.refresh_gauges()
            ring.append(sample_registry(metrics))

    signals = GracefulSignals(notify=_notify)
    signals.install()
    server = await asyncio.start_server(
        app.handle_connection, config.host, config.port
    )
    port = server.sockets[0].getsockname()[1]
    if port_holder is not None:
        port_holder["port"] = port
        port_holder["app"] = app
    if not config.quiet:
        print(f"serving on http://{config.host}:{port}", file=out, flush=True)
    _log.info(
        "serve.start", host=config.host, port=port, jobs=config.jobs,
        window=config.window, sample_interval=config.sample_interval,
    )
    sampler = (
        loop.create_task(_sample_loop()) if ring is not None else None
    )
    # The listener is up and the batcher can dispatch: ready for traffic.
    app.mark_ready()
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        app.ready = False
        server.close()
        await server.wait_closed()
        if sampler is not None:
            sampler.cancel()
            try:
                await sampler
            except asyncio.CancelledError:
                pass
        await batcher.drain()
        batcher.shutdown()
        persisted = store.flush()
        if ring is not None:
            ring.close()
        signals.restore()
        if tracer is not None:
            tracing.set_tracer(None)
            tracer.write_chrome(config.trace_out)
        _log.info(
            "serve.drained", persisted=persisted, store=str(store.root),
            signalled=signals.signal is not None,
        )
        if not config.quiet:
            print(
                f"drained: {persisted} memoized results persisted to "
                f"{store.root}",
                file=out,
                flush=True,
            )
    return EXIT_INTERRUPTED if signals.signal is not None else EXIT_OK


def serve_forever(config: ServeConfig, *, stream=None) -> int:
    """Blocking entry point for the CLI verb."""
    return asyncio.run(run_server(config, stream=stream))


class BackgroundServer:
    """A server on a daemon thread — tests and the loadgen self-drive.

    Starts on an ephemeral port, exposes ``url``, and stops cleanly via
    :meth:`stop` (the same drain path as the signal handler, minus the
    signal).
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.config.quiet = True
        self._ready = threading.Event()
        self._holder: dict = {}
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._exit_code: int | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> int:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            return await run_server(
                self.config,
                ready=self._ready,
                stop_event=self._stop_event,
                port_holder=self._holder,
            )

        self._exit_code = asyncio.run(main())

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server failed to start within 60s")
        return self

    @property
    def port(self) -> int:
        return self._holder["port"]

    @property
    def app(self) -> ServeApp:
        return self._holder["app"]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def stop(self, timeout: float = 60) -> int:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server failed to stop within the timeout")
        code = self._exit_code
        return code if code is not None else EXIT_OK

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
