"""Serve wire format: JSON queries in, JSON stats out.

One query asks for one simulation::

    {"workload": "espresso",
     "factor": 0.05,
     "config": {"model": "baseline", "issue_width": 1}}

``config`` is either a model shorthand (``model`` plus any field
overrides) or a complete field-for-field :class:`MachineConfig`
specification as produced by :func:`config_to_spec`.  The nested FPU
block uses the same convention (``issue_policy`` travels as its enum
value string).  Round-trips are exact: ``config_from_spec(
config_to_spec(c)) == c`` for every valid configuration, which is what
lets the server dedup queries by
:func:`~repro.robustness.guards.config_fingerprint`.

Validation is eager and field-named, reusing the same machinery the CLI
and the sweep stack already trust: factors go through
:func:`repro.robustness.validation.validate_factor`, configurations
through :meth:`MachineConfig.validate`, and unknown workloads raise
:class:`~repro.workloads.registry.WorkloadError` so the server can
answer with the very same kernel-list message ``aurora-sim`` prints.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    ConfigError,
    FPIssuePolicy,
    FPUConfig,
    MachineConfig,
)
from repro.robustness.guards import config_fingerprint
from repro.robustness.validation import validate_factor
from repro.workloads.registry import all_specs, get_spec

#: Model shorthands accepted in a query's ``config.model`` field —
#: the same names the CLI's ``--model`` flag takes.
MODELS: dict[str, MachineConfig] = {
    "small": SMALL,
    "baseline": BASELINE,
    "large": LARGE,
    "recommended": RECOMMENDED,
}


class QueryError(ValueError):
    """A query payload is invalid; the message names the field."""


@dataclass(frozen=True)
class Query:
    """One validated design-space query."""

    workload: str
    factor: float
    config: MachineConfig
    fingerprint: str

    @property
    def group(self) -> tuple[str, float]:
        """The batching key: queries for one (workload, factor) pair
        share a trace and can be answered by one ``simulate_many``."""
        return (self.workload, self.factor)


def workload_error_text(error: KeyError) -> str:
    """The CLI's unknown-workload message, verbatim.

    ``aurora-sim`` prints ``error: <msg>`` followed by the registered
    kernel list; the server returns the identical text in its 400 body
    so the two front ends can never drift apart.
    """
    lines = [f"error: {error.args[0]}", "valid kernels:"]
    for spec in all_specs():
        lines.append(f"  {spec.name:<10} [{spec.suite}]")
    return "\n".join(lines)


# ------------------------------------------------------------ config wire


def config_to_spec(config: MachineConfig) -> dict:
    """Full-field JSON specification of one machine configuration."""
    spec: dict = {}
    for field in dataclasses.fields(MachineConfig):
        value = getattr(config, field.name)
        if field.name == "fpu":
            fpu: dict = {}
            for fpu_field in dataclasses.fields(FPUConfig):
                fpu_value = getattr(value, fpu_field.name)
                if fpu_field.name == "issue_policy":
                    fpu_value = fpu_value.value
                fpu[fpu_field.name] = fpu_value
            spec["fpu"] = fpu
        else:
            spec[field.name] = value
    return spec


def _fpu_from_spec(spec: object, *, where: str = "config.fpu") -> FPUConfig:
    if not isinstance(spec, dict):
        raise QueryError(
            f"{where} must be an object, got {type(spec).__name__}"
        )
    known = {field.name for field in dataclasses.fields(FPUConfig)}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise QueryError(f"{where}: unknown fields: {', '.join(unknown)}")
    kwargs = dict(spec)
    if "issue_policy" in kwargs:
        raw = kwargs["issue_policy"]
        try:
            kwargs["issue_policy"] = FPIssuePolicy(raw)
        except ValueError:
            allowed = "/".join(policy.value for policy in FPIssuePolicy)
            raise QueryError(
                f"{where}.issue_policy must be one of {allowed}, "
                f"got {raw!r}"
            ) from None
    try:
        return FPUConfig(**kwargs)
    except ConfigError as error:
        raise QueryError(f"{where}: {error}") from None
    except TypeError as error:
        raise QueryError(f"{where}: {error}") from None


def config_from_spec(spec: object, *, where: str = "config") -> MachineConfig:
    """Build a validated :class:`MachineConfig` from a query's spec.

    Accepts either a ``model`` shorthand plus overrides or a complete
    field set.  Every construction problem surfaces as a
    :class:`QueryError` whose message names the offending field(s) —
    :meth:`MachineConfig.validate` already collects them all.
    """
    if not isinstance(spec, dict):
        raise QueryError(
            f"{where} must be an object, got {type(spec).__name__}"
        )
    spec = dict(spec)
    base: MachineConfig | None = None
    model = spec.pop("model", None)
    if model is not None:
        if not isinstance(model, str) or model not in MODELS:
            raise QueryError(
                f"{where}.model must be one of "
                f"{'/'.join(sorted(MODELS))}, got {model!r}"
            )
        base = MODELS[model]
    known = {field.name for field in dataclasses.fields(MachineConfig)}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise QueryError(f"{where}: unknown fields: {', '.join(unknown)}")
    if "fpu" in spec:
        spec["fpu"] = _fpu_from_spec(spec["fpu"], where=f"{where}.fpu")
    try:
        if base is not None:
            return base.with_(**spec) if spec else base
        return MachineConfig(**spec)
    except ConfigError as error:
        raise QueryError(f"{where}: {error}") from None
    except TypeError as error:
        raise QueryError(f"{where}: {error}") from None


# ------------------------------------------------------------- query wire


def parse_query(payload: object) -> Query:
    """Validate one JSON query payload into a :class:`Query`.

    Raises :class:`QueryError` (field-named, -> HTTP 400) for malformed
    payloads and :class:`~repro.workloads.registry.WorkloadError` for
    unknown workloads (-> HTTP 400 with the CLI's kernel list).
    """
    if not isinstance(payload, dict):
        raise QueryError(
            f"query must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"workload", "factor", "config"})
    if unknown:
        raise QueryError(f"query: unknown fields: {', '.join(unknown)}")
    if "workload" not in payload:
        raise QueryError("query: missing field 'workload'")
    workload = payload["workload"]
    if not isinstance(workload, str) or not workload:
        raise QueryError(
            f"workload must be a non-empty string, got {workload!r}"
        )
    get_spec(workload)  # raises WorkloadError for unknown names
    try:
        factor = validate_factor(payload.get("factor", 1.0), where="factor")
    except ValueError as error:
        raise QueryError(str(error)) from None
    config = config_from_spec(payload.get("config", {"model": "baseline"}))
    return Query(
        workload=workload,
        factor=factor,
        config=config,
        fingerprint=config_fingerprint(config),
    )


def query_to_payload(query: Query) -> dict:
    """The JSON payload that parses back to ``query`` (loadgen records)."""
    return {
        "workload": query.workload,
        "factor": query.factor,
        "config": config_to_spec(query.config),
    }
