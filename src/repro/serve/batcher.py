"""Query batching: dedup by config fingerprint, one kernel call per group.

PR 7's :class:`~repro.core.kernel.BatchedKernel` advances a *vector* of
machine configurations per trace record, so N concurrent queries for
the same (workload, factor) cost barely more than one — provided
someone groups them.  That someone is :class:`QueryBatcher`:

* Queries arriving within a short **batching window** (default 10 ms)
  for the same ``(workload, factor)`` join one group.
* Within a group, queries are **deduped by config fingerprint** — two
  clients asking for the same configuration share one simulation slot
  (and both get the same answer object).
* When the window closes, the group dispatches as **one**
  :func:`repro.core.kernel.simulate_many` call on an executor (thread
  for ``--jobs 1``, process pool above that — workers mmap traces from
  the shared disk cache).
* Results land in the :class:`~repro.serve.store.MemoStore` before any
  waiter is released, so a memoized answer can never race a concurrent
  recompute of the same key.

The ``serve.batch_width`` histogram records distinct configs per
dispatch — the observable proof that N concurrent distinct-config
queries cost fewer than N kernel dispatches.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing

from repro.core.config import MachineConfig
from repro.serve.protocol import Query
from repro.serve.store import MemoStore
from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry
from repro.workloads import trace_cache

#: Default batching window (seconds): long enough to coalesce a burst,
#: short against the cost of even the smallest simulation.
DEFAULT_WINDOW = 0.010

#: ``serve.batch_width`` histogram buckets (configs per dispatch).
BATCH_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _simulate_group(
    workload: str,
    factor: float,
    configs: list[MachineConfig],
    kernel: str | None,
) -> list:
    """Executor entry point: one trace pass over the whole group.

    Runs in a worker thread or a pool process (everything it takes and
    returns pickles); the trace comes from the process-wide registry
    memo backed by the shared mmap disk cache.
    """
    from repro.core.kernel import simulate_many
    from repro.experiments.common import scaled_trace

    trace = scaled_trace(workload, factor)
    results = simulate_many(trace, configs, kernel=kernel)
    return [result.stats for result in results]


def build_executor(jobs: int) -> concurrent.futures.Executor:
    """Simulation executor: in-process thread at ``jobs=1`` (keeps CI
    deterministic and the event loop responsive — the GIL releases
    during numpy work), process pool above that, configured exactly
    like the sweep runner's (workers share the parent's trace cache)."""
    if jobs <= 1:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-sim"
        )
    from repro.robustness.runner import _pool_initializer, _start_method
    from repro.telemetry import logging as structlog

    cache = trace_cache.default_cache()
    context = multiprocessing.get_context(_start_method(None))
    log_config = structlog.current_config()
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_pool_initializer,
        initargs=(
            str(cache.root), cache.enabled, cache.max_entries, cache.verify,
            None,  # no chaos plan in serve mode
            log_config[0] if log_config else None,
            log_config[1] if log_config else "INFO",
        ),
    )


class _Group:
    """One open batching window for a (workload, factor) pair."""

    __slots__ = ("query_count", "configs", "futures")

    def __init__(self) -> None:
        self.query_count = 0
        #: fingerprint -> config, insertion-ordered (dedup happens here).
        self.configs: dict[str, MachineConfig] = {}
        #: fingerprint -> futures awaiting that config's stats.
        self.futures: dict[str, list[asyncio.Future]] = {}


class QueryBatcher:
    """Coalesce concurrent queries into grouped ``simulate_many`` calls."""

    def __init__(
        self,
        store: MemoStore,
        metrics: MetricsRegistry,
        *,
        executor: concurrent.futures.Executor | None = None,
        window: float = DEFAULT_WINDOW,
        kernel: str | None = None,
        jobs: int = 1,
    ) -> None:
        self.store = store
        self.metrics = metrics
        self.window = window
        self.kernel = kernel
        self.executor = executor if executor is not None else build_executor(jobs)
        self._groups: dict[tuple[str, float], _Group] = {}
        self._dispatches: set[asyncio.Task] = set()
        # Pre-register the instruments so /metrics exposes them from the
        # first scrape, not the first query.
        metrics.counter("serve.queries")
        metrics.counter("serve.memo.hits")
        metrics.counter("serve.memo.misses")
        metrics.counter("serve.coalesced")
        metrics.counter("serve.dispatches")
        metrics.counter("serve.simulated_configs")
        metrics.histogram("serve.batch_width", BATCH_WIDTH_BUCKETS)

    # ------------------------------------------------------------- submit

    async def submit(self, query: Query) -> tuple:
        """Answer one query; returns ``(stats, meta)``.

        ``meta`` reports how the answer was produced: ``memo`` (served
        without simulating), ``coalesced`` (shared another identical
        in-flight query's slot) and ``batch_width`` (distinct configs in
        the dispatch that produced it; 0 for memo answers).
        """
        self.metrics.counter("serve.queries").inc()
        stats = self.store.get(query.workload, query.factor, query.fingerprint)
        if stats is not None:
            self.metrics.counter("serve.memo.hits").inc()
            return stats, {"memo": True, "coalesced": False, "batch_width": 0}
        self.metrics.counter("serve.memo.misses").inc()

        loop = asyncio.get_running_loop()
        group = self._groups.get(query.group)
        if group is None:
            group = _Group()
            self._groups[query.group] = group
            task = loop.create_task(self._close_window(query.group))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)
        group.query_count += 1
        coalesced = query.fingerprint in group.configs
        if coalesced:
            self.metrics.counter("serve.coalesced").inc()
        else:
            group.configs[query.fingerprint] = query.config
        future: asyncio.Future = loop.create_future()
        group.futures.setdefault(query.fingerprint, []).append(future)

        with tracing.span(
            "batch_wait", "serve",
            workload=query.workload, factor=query.factor,
        ):
            stats, width = await future
        return stats, {
            "memo": False, "coalesced": coalesced, "batch_width": width,
        }

    # ----------------------------------------------------------- dispatch

    async def _close_window(self, group_key: tuple[str, float]) -> None:
        await asyncio.sleep(self.window)
        group = self._groups.pop(group_key, None)
        if group is None:  # drained concurrently
            return
        workload, factor = group_key
        fingerprints = list(group.configs)
        configs = list(group.configs.values())
        width = len(configs)
        self.metrics.counter("serve.dispatches").inc()
        self.metrics.counter("serve.simulated_configs").inc(width)
        self.metrics.histogram("serve.batch_width").observe(width)
        loop = asyncio.get_running_loop()
        try:
            with tracing.span(
                "simulate_batch", "serve", workload=workload, width=width
            ):
                stats_list = await loop.run_in_executor(
                    self.executor,
                    _simulate_group, workload, factor, configs, self.kernel,
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            for futures in group.futures.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
            return
        with tracing.span(
            "store", "serve", workload=workload, width=width
        ):
            for fingerprint, stats in zip(fingerprints, stats_list):
                self.store.put(workload, factor, fingerprint, stats)
        for fingerprint, stats in zip(fingerprints, stats_list):
            for future in group.futures.get(fingerprint, ()):
                if not future.done():
                    future.set_result((stats, width))

    # -------------------------------------------------------------- drain

    async def drain(self) -> None:
        """Wait for every open window and in-flight dispatch to finish."""
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)
