"""``aurora-sim serve``: the batched design-space query service.

The paper's whole method is asking "what CPI does machine configuration
X get on workload Y?" over and over; this package serves that question
as traffic instead of batch jobs.  The pieces:

* :mod:`repro.serve.protocol` — the JSON wire format: query parsing
  with field-named 400s, exact machine-config round-trips.
* :mod:`repro.serve.store` — the persistent :class:`SimStats` memo
  store (same atomic write-then-rename + code-hash keying discipline as
  the checkpoint manifest).
* :mod:`repro.serve.batcher` — dedups and coalesces concurrent queries
  by config fingerprint within a short batching window and dispatches
  each (workload, factor) group as **one**
  :func:`repro.core.kernel.simulate_many` call.
* :mod:`repro.serve.server` — the asyncio HTTP front end (`/query`,
  `/metrics`, `/healthz`), span-per-request, graceful SIGINT/SIGTERM
  drain via :class:`repro.robustness.signals.GracefulSignals`.
* :mod:`repro.serve.loadgen` — the closed-loop load driver
  (``aurora-sim loadgen``): recorded or synthetic query streams at
  configurable concurrency, p50/p99/throughput reporting, and
  ``BENCH_history.json`` records tagged ``mode="serve"``.

See docs/SERVING.md for the API schema and operational notes.
"""

from repro.serve.protocol import Query, QueryError, parse_query
from repro.serve.store import MemoStore

__all__ = ["MemoStore", "Query", "QueryError", "parse_query"]
