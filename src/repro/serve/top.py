"""A live terminal dashboard for a running server: ``aurora-sim top``.

Polls ``GET /metrics`` on an interval, keeps its own client-side
:class:`~repro.telemetry.timeseries.TimeSeriesRing` of the scrapes, and
renders a refreshing text dashboard: request and error rates, latency
p50/p99, memo hit rate, batch width, in-flight — each with a
sparkline-style history strip, newest sample on the right::

    aurora-sim top — http://127.0.0.1:8311  (2.0s refresh, 14 samples)

    req/s          12.4  ▁▂▃▅▆▇█▆▅▆▇█▇▆
    err/s           0.0  ▁▁▁▁▁▁▁▁▁▁▁▁▁▁
    p50 ms          4.2  ▃▃▃▂▂▂▃▃▄▃▃▃▃▃
    ...

No new dependencies: plain :mod:`http.client` polling, ANSI clear
between frames (suppressed when the output is not a tty or with
``--no-clear``), Unicode block characters for the sparklines.
"""

from __future__ import annotations

import http.client
import json
import sys
import time

from repro.telemetry.timeseries import TimeSeriesRing, rate

#: Sparkline glyphs, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: History samples kept (and sparkline width).
HISTORY = 30

_CLEAR = "\x1b[H\x1b[2J"


class TopError(RuntimeError):
    """The dashboard cannot reach or parse the server."""


def sparkline(values: list[float], width: int = HISTORY) -> str:
    """Render the trailing ``width`` values as a block-character strip."""
    tail = values[-width:]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    if high <= low:
        return SPARK_CHARS[0] * len(tail)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[round((value - low) / (high - low) * steps)]
        for value in tail
    )


def fetch_metrics(url: str, timeout: float = 10.0) -> dict:
    """One ``GET /metrics`` scrape, parsed."""
    import urllib.parse

    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme not in ("http", "") or not parsed.hostname:
        raise TopError(f"url must be http://host:port, got {url!r}")
    connection = http.client.HTTPConnection(
        parsed.hostname, parsed.port or 80, timeout=timeout
    )
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        payload = response.read()
        if response.status != 200:
            raise TopError(
                f"GET /metrics answered HTTP {response.status}"
            )
        return json.loads(payload)
    except (OSError, http.client.HTTPException) as error:
        raise TopError(
            f"cannot scrape {url}: {type(error).__name__}: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise TopError(f"metrics payload is not JSON: {error}") from None
    finally:
        connection.close()


class TopDashboard:
    """Scrape history + rendering for one server."""

    def __init__(self, url: str, *, interval: float = 2.0) -> None:
        self.url = url
        self.interval = interval
        self.ring = TimeSeriesRing(max(HISTORY, 2))
        self._histories: dict[str, list[float]] = {}

    # ---------------------------------------------------------- sampling

    def scrape(self, *, now: float | None = None) -> None:
        doc = fetch_metrics(self.url)
        values: dict[str, float] = {}
        values.update(doc.get("counters", {}))
        for name, value in doc.get("gauges", {}).items():
            if value is not None:
                values[name] = value
        for name, hist in doc.get("histograms", {}).items():
            values[f"{name}.count"] = hist.get("count", 0)
            values[f"{name}.sum"] = hist.get("sum", 0.0)
            values[f"{name}.mean"] = hist.get("mean", 0.0)
        self.ring.append(
            {"t": time.time() if now is None else now, "values": values}
        )

    # --------------------------------------------------------- rendering

    def _row(self, label: str, value: float, fmt: str = "{:>10.1f}") -> str:
        history = self._histories.setdefault(label, [])
        history.append(value)
        del history[:-HISTORY]
        return f"{label:<14}{fmt.format(value)}  {sparkline(history)}"

    def render(self) -> str:
        latest = self.ring.latest()
        if latest is None:
            return "no samples yet"
        values = latest["values"]
        window = self.interval * HISTORY
        requests_rate = rate(self.ring, "serve.requests", window)
        error_rate = rate(self.ring, "serve.errors", window)
        queries = values.get("serve.queries", 0.0)
        hits = values.get("serve.memo.hits", 0.0)
        hit_rate = (hits / queries * 100.0) if queries else 0.0
        dispatches = values.get("serve.dispatches", 0.0)
        simulated = values.get("serve.simulated_configs", 0.0)
        batch_width = (simulated / dispatches) if dispatches else 0.0
        lines = [
            f"aurora-sim top — {self.url}  "
            f"({self.interval:g}s refresh, {len(self.ring)} samples)",
            "",
            self._row("req/s", requests_rate),
            self._row("err/s", error_rate),
            self._row(
                "p50 ms",
                values.get("serve.latency_p50_seconds", 0.0) * 1000.0,
                "{:>10.2f}",
            ),
            self._row(
                "p99 ms",
                values.get("serve.latency_p99_seconds", 0.0) * 1000.0,
                "{:>10.2f}",
            ),
            self._row("memo hit %", hit_rate),
            self._row("batch width", batch_width, "{:>10.2f}"),
            self._row("in-flight", values.get("serve.in_flight", 0.0)),
            "",
            f"requests {values.get('serve.requests', 0):>.0f}   "
            f"errors {values.get('serve.errors', 0):>.0f}   "
            f"memo hits {hits:>.0f}   "
            f"coalesced {values.get('serve.coalesced', 0):>.0f}",
        ]
        return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    stream=None,
    clear: bool | None = None,
) -> int:
    """Poll + render until interrupted (or for ``iterations`` frames).

    ``clear=None`` auto-detects: ANSI clear only when writing to a tty.
    Returns 0; scrape failures raise :class:`TopError` (the CLI maps
    them to an error exit).
    """
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    dashboard = TopDashboard(url, interval=interval)
    frame = 0
    while iterations is None or frame < iterations:
        dashboard.scrape()
        if clear:
            out.write(_CLEAR)
        out.write(dashboard.render() + "\n")
        out.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        time.sleep(interval)
    return 0
