"""Workload-replay load driver: ``aurora-sim loadgen``.

Closed-loop clients against a live ``aurora-sim serve`` endpoint: each
of ``concurrency`` worker threads owns one keep-alive HTTP connection
and fires its next query the moment the previous response lands, until
the request budget (or duration) is spent.  Two query sources:

* **Recorded** — a JSON-lines file of query payloads (one per line,
  the exact ``POST /query`` body), replayed round-robin.  ``aurora-sim
  loadgen --record`` writes one from the synthetic generator so CI can
  replay a fixed workload byte-for-byte.
* **Synthetic** — a seeded generator over the Figure 8 design-space
  grid (the paper's ~58 configurations) crossed with a workload list,
  mirroring the recorded-vs-generated split of production load drivers.

The report carries p50/p99 latency, throughput, error and memo-hit
counts, and converts to a ``BENCH_history.json`` record tagged
``mode="serve"`` — a separate perf series that ``perf --check``
refuses to compare against simulate-mode baselines.

Latency percentiles are derived through
:meth:`repro.telemetry.metrics.Histogram.quantile` over the same
``LATENCY_BUCKETS`` the server's ``serve.latency_seconds`` histogram
uses, so the client-side and server-side numbers agree by construction
(bucket resolution included).

**SLOs**: ``run_load(..., slos=[...])`` additionally samples its own
``loadgen.*`` registry into a
:class:`~repro.telemetry.timeseries.TimeSeriesRing` during the run and
evaluates the declarative objectives (:mod:`repro.telemetry.slo`) over
it at the end; ``aurora-sim loadgen --slo`` exits
``EXIT_SLO_VIOLATION`` (6) when any objective burns its budget in
every window.
"""

from __future__ import annotations

import http.client
import itertools
import json
import pathlib
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass, field

from repro.serve.protocol import parse_query
from repro.serve.server import percentile  # noqa: F401 - public re-export
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import SLODef, SLOResult, evaluate_slos
from repro.telemetry.timeseries import TimeSeriesRing, sample_registry

#: Default synthetic workloads: small integer kernels so a smoke run
#: simulates in seconds, not minutes.
DEFAULT_WORKLOADS = ("espresso", "sc")


class LoadError(RuntimeError):
    """The load run could not execute (bad URL, unreadable query file)."""


# ------------------------------------------------------------ query sources


def synthetic_queries(
    seed: int = 0,
    *,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    factor: float = 0.05,
    count: int = 64,
) -> list[dict]:
    """``count`` seeded queries over the Figure 8 design-space grid."""
    from repro.experiments.fig8_design_space import _design_points
    from repro.serve.protocol import config_to_spec

    rng = random.Random(seed)
    points = _design_points()
    queries = []
    for _ in range(count):
        _label, config, _marker = rng.choice(points)
        queries.append(
            {
                "workload": rng.choice(list(workloads)),
                "factor": factor,
                "config": config_to_spec(config),
            }
        )
    return queries


def write_queries(path: str | pathlib.Path, queries: list[dict]) -> pathlib.Path:
    """Record queries as JSON lines (the replay file format)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for query in queries:
            handle.write(json.dumps(query) + "\n")
    return path


def load_queries(path: str | pathlib.Path) -> list[dict]:
    """Parse a recorded query file; every line must be a valid query."""
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise LoadError(f"cannot read query file {path}: {error}") from None
    queries = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise LoadError(f"{path}:{number}: not valid JSON: {error}") from None
        parse_query(payload)  # field-named errors before any traffic
        queries.append(payload)
    if not queries:
        raise LoadError(f"{path}: no queries to replay")
    return queries


# --------------------------------------------------------------- the driver


@dataclass
class LoadReport:
    """One load run's outcome."""

    requests: int = 0
    errors: int = 0
    memo_hits: int = 0
    coalesced: int = 0
    instructions: int = 0
    sim_cycles: int = 0
    wall_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    error_samples: list[str] = field(default_factory=list)
    slo_results: list[SLOResult] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def latency_histogram(self) -> Histogram:
        """The run's latencies as an le-bucket histogram — the *same*
        buckets and quantile derivation as the server's
        ``serve.latency_seconds``, so both ends agree by construction."""
        hist = Histogram("loadgen.latency_seconds", LATENCY_BUCKETS)
        for value in self.latencies:
            hist.observe(value)
        return hist

    @property
    def p50_ms(self) -> float:
        return self.latency_histogram().quantile(0.50) * 1000.0

    @property
    def p99_ms(self) -> float:
        return self.latency_histogram().quantile(0.99) * 1000.0

    @property
    def slo_violated(self) -> bool:
        return any(result.violated for result in self.slo_results)

    def render(self) -> str:
        lines = [
            f"requests      {self.requests:>10,}",
            f"errors        {self.errors:>10,}",
            f"memo hits     {self.memo_hits:>10,}",
            f"coalesced     {self.coalesced:>10,}",
            f"wall seconds  {self.wall_seconds:>10.2f}",
            f"throughput    {self.throughput:>10.1f} req/s",
            f"latency p50   {self.p50_ms:>10.2f} ms",
            f"latency p99   {self.p99_ms:>10.2f} ms",
        ]
        for sample in self.error_samples[:3]:
            lines.append(f"error sample: {sample}")
        for result in self.slo_results:
            lines.append(result.render())
        return "\n".join(lines)

    def as_perf_record(
        self,
        *,
        git_sha: str,
        recorded_at: float,
        workload: str,
        factor: float,
        config: str = "grid",
    ) -> dict:
        """A ``BENCH_history.json`` record for the ``serve`` series.

        ``cycles_per_second`` keeps its simulate-mode meaning (simulated
        cycles delivered per wall second, summed over every response);
        the serve-only latency facts ride in the optional fields.
        """
        wall = self.wall_seconds or 1e-9
        return {
            "git_sha": git_sha,
            "recorded_at": recorded_at,
            "workload": workload,
            "factor": factor,
            "config": config,
            "instructions": self.instructions,
            "sim_cycles": self.sim_cycles,
            "wall_seconds": self.wall_seconds,
            "cycles_per_second": self.sim_cycles / wall,
            "instructions_per_second": self.instructions / wall,
            "cache_hits": self.memo_hits,
            "cache_misses": max(0, self.requests - self.memo_hits),
            "mode": "serve",
            "requests_per_second": self.throughput,
            "latency_p50_ms": self.p50_ms,
            "latency_p99_ms": self.p99_ms,
        }


def _parse_url(url: str) -> tuple[str, int]:
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme not in ("http", "") or not parsed.hostname:
        raise LoadError(
            f"url must be http://host:port, got {url!r}"
        )
    return parsed.hostname, parsed.port or 80


def run_load(
    url: str,
    queries: list[dict],
    *,
    concurrency: int = 4,
    requests: int | None = None,
    duration: float | None = None,
    timeout: float = 300.0,
    slos: list[SLODef] | None = None,
    sample_interval: float = 0.25,
) -> LoadReport:
    """Drive ``queries`` at the server; closed loop per worker thread.

    Stops after ``requests`` total completions (default: one pass over
    the query list) or ``duration`` seconds, whichever is given.

    With ``slos``, a sampler thread snapshots the driver's own
    ``loadgen.*`` registry every ``sample_interval`` seconds into a
    time-series ring, and the objectives are evaluated over it after
    the run (results land in ``report.slo_results``).
    """
    if concurrency < 1:
        raise LoadError(f"concurrency must be >= 1, got {concurrency}")
    host, port = _parse_url(url)
    total_budget = requests if requests is not None else len(queries)
    report = LoadReport()
    lock = threading.Lock()
    source = itertools.cycle(queries)
    registry = MetricsRegistry()
    requests_counter = registry.counter("loadgen.requests")
    errors_counter = registry.counter("loadgen.errors")
    latency_hist = registry.histogram(
        "loadgen.latency_seconds", LATENCY_BUCKETS
    )
    ring: TimeSeriesRing | None = None
    sampler: threading.Thread | None = None
    sampling_done = threading.Event()
    if slos:
        ring = TimeSeriesRing(max(16, int(3600 / max(sample_interval, 0.01))))
        ring.append(sample_registry(registry))

        def sample_loop() -> None:
            while not sampling_done.wait(sample_interval):
                ring.append(sample_registry(registry))

        sampler = threading.Thread(
            target=sample_loop, daemon=True, name="loadgen-sampler"
        )
        sampler.start()
    deadline = time.monotonic() + duration if duration else None
    started = time.monotonic()

    def take() -> dict | None:
        with lock:
            if deadline is None and report.requests + in_flight[0] >= total_budget:
                return None
            if deadline is not None and time.monotonic() >= deadline:
                return None
            in_flight[0] += 1
            return next(source)

    in_flight = [0]

    def settle(latency: float, response: dict | None, problem: str | None) -> None:
        requests_counter.inc()
        latency_hist.observe(latency)
        with lock:
            in_flight[0] -= 1
            report.requests += 1
            report.latencies.append(latency)
            if problem is not None:
                errors_counter.inc()
                report.errors += 1
                if len(report.error_samples) < 8:
                    report.error_samples.append(problem)
                return
            if response.get("memo"):
                report.memo_hits += 1
            if response.get("coalesced"):
                report.coalesced += 1
            stats = response.get("stats", {})
            report.instructions += int(stats.get("instructions", 0))
            report.sim_cycles += int(stats.get("cycles", 0))

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                query = take()
                if query is None:
                    return
                body = json.dumps(query)
                begin = time.monotonic()
                problem = None
                response: dict | None = None
                try:
                    connection.request(
                        "POST", "/query", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    raw = connection.getresponse()
                    payload = raw.read()
                    if raw.status != 200:
                        problem = f"HTTP {raw.status}: {payload[:200]!r}"
                    else:
                        response = json.loads(payload)
                except (OSError, http.client.HTTPException,
                        json.JSONDecodeError) as error:
                    problem = f"{type(error).__name__}: {error}"
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                settle(time.monotonic() - begin, response, problem)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, daemon=True, name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.monotonic() - started
    if slos and ring is not None:
        sampling_done.set()
        if sampler is not None:
            sampler.join(timeout=5.0)
        ring.append(sample_registry(registry))
        report.slo_results = evaluate_slos(slos, ring, prefix="loadgen")
    return report
