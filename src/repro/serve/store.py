"""Persistent :class:`SimStats` memo store for the serve front end.

Repeat queries should never re-simulate: every completed simulation
lands in an on-disk store keyed exactly like the checkpoint manifest —
``workload|factor|config-fingerprint|code-hash`` — with the same
atomic write-then-rename discipline, so a crash mid-store can only
leave the previous entry (or no entry), never a torn one.

The code hash is :func:`repro.robustness.runner.code_fingerprint`: any
edit to the simulator invalidates memoized stats the same way it
invalidates checkpointed experiment text, with the same operator-facing
warning shape (``memo invalidated (code changed): old=... new=...``).
A corrupt or torn entry self-heals: it is unlinked and the query falls
through to a fresh simulation that overwrites it.

Layout: one JSON file per key under the store root, named by a hash of
the *code-independent* part of the key (so a code change overwrites
stale entries in place instead of leaking files), carrying the full key
fields plus the :meth:`SimStats.to_dict` payload::

    results/.sim_memo/<sha256(workload|factor|fingerprint)[:24]>.json
    {"workload": "espresso", "factor": 0.05,
     "fingerprint": "b1946ac92492d234", "code": "7dd71...",
     "stats": {...}}

A write-through in-memory tier sits in front of the files; ``get``
order is memory -> disk -> miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import threading

from repro.core.stats import SimStats
from repro.telemetry.logging import get_logger

#: Default store location, beside the trace cache and checkpoint trees.
DEFAULT_ROOT = pathlib.Path("results") / ".sim_memo"

_log = get_logger("store")


class MemoStore:
    """The persistent (workload, factor, config, code) -> SimStats memo.

    Thread-safe: the serve batcher stores results from executor
    callbacks while the event loop reads concurrently.
    """

    def __init__(
        self,
        root: str | pathlib.Path = DEFAULT_ROOT,
        *,
        code_hash: str | None = None,
        stream=None,
    ) -> None:
        self.root = pathlib.Path(root)
        if code_hash is None:
            from repro.robustness.runner import code_fingerprint

            code_hash = code_fingerprint()
        self.code_hash = code_hash
        self._stream = stream
        self._lock = threading.Lock()
        self._memory: dict[str, SimStats] = {}
        # validation_snapshot-style counters, published as serve.memo.*
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self.corrupt = 0

    # ------------------------------------------------------------- keying

    @staticmethod
    def key(
        workload: str, factor: float, fingerprint: str, code_hash: str
    ) -> str:
        """The full memo key (same shape as the checkpoint manifest's)."""
        return (
            f"{workload}|factor={factor!r}|config={fingerprint}"
            f"|code={code_hash}"
        )

    def path_for(self, workload: str, factor: float, fingerprint: str
                 ) -> pathlib.Path:
        """Entry path — code-independent, so stale code overwrites."""
        stem = hashlib.sha256(
            f"{workload}|factor={factor!r}|config={fingerprint}".encode()
        ).hexdigest()[:24]
        return self.root / f"{stem}.json"

    # ------------------------------------------------------------- lookup

    def get(
        self, workload: str, factor: float, fingerprint: str
    ) -> SimStats | None:
        """Memoized stats, or None (memory -> disk -> miss).

        Entries written by different code warn and are dropped; corrupt
        entries are unlinked so the recompute can self-heal the store.
        """
        full_key = self.key(workload, factor, fingerprint, self.code_hash)
        with self._lock:
            stats = self._memory.get(full_key)
            if stats is not None:
                self.hits_memory += 1
                return stats
        path = self.path_for(workload, factor, fingerprint)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._heal(path, "unreadable entry")
            return None
        if not isinstance(payload, dict):
            self._heal(path, "entry is not an object")
            return None
        stored_code = payload.get("code")
        if stored_code != self.code_hash:
            with self._lock:
                self.invalidated += 1
                self.misses += 1
            _log.warning(
                "memo.invalidated",
                path=path.name,
                old_code=stored_code,
                new_code=self.code_hash,
            )
            self._warn(
                f"memo invalidated (code changed): "
                f"old={stored_code} new={self.code_hash}"
            )
            path.unlink(missing_ok=True)
            return None
        if (
            payload.get("workload") != workload
            or payload.get("factor") != factor
            or payload.get("fingerprint") != fingerprint
        ):
            self._heal(path, "entry key mismatch")
            return None
        try:
            stats = SimStats.from_dict(payload.get("stats"))
        except ValueError as error:
            self._heal(path, str(error))
            return None
        with self._lock:
            self.hits_disk += 1
            self._memory[full_key] = stats
        return stats

    def _heal(self, path: pathlib.Path, why: str) -> None:
        with self._lock:
            self.corrupt += 1
            self.misses += 1
        _log.warning("memo.self_heal", path=path.name, why=why)
        self._warn(f"memo self-heal: {path.name}: {why}; recomputing")
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    def _warn(self, message: str) -> None:
        if self._stream is not None:
            print(f"warning: {message}", file=self._stream)

    # -------------------------------------------------------------- store

    def put(
        self,
        workload: str,
        factor: float,
        fingerprint: str,
        stats: SimStats,
    ) -> None:
        """Write-through store (atomic write-then-rename on disk)."""
        full_key = self.key(workload, factor, fingerprint, self.code_hash)
        with self._lock:
            self._memory[full_key] = stats
            self.stores += 1
        payload = {
            "workload": workload,
            "factor": factor,
            "fingerprint": fingerprint,
            "code": self.code_hash,
            "stats": stats.to_dict(),
        }
        path = self.path_for(workload, factor, fingerprint)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                    handle.write("\n")
                os.replace(tmp_name, path)
            except OSError:
                pathlib.Path(tmp_name).unlink(missing_ok=True)
                raise
        except OSError:
            # A read-only or full disk degrades to a memory-only memo,
            # never a failed response.
            pass

    def flush(self) -> int:
        """Barrier for shutdown: the store is write-through, so there is
        nothing buffered — returns the number of entries persisted this
        process for the drain log line."""
        with self._lock:
            return self.stores

    # ---------------------------------------------------------- counters

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot (serve publishes these as ``serve.memo.*``)."""
        with self._lock:
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "stores": self.stores,
                "invalidated": self.invalidated,
                "corrupt": self.corrupt,
            }
