"""Instruction definitions for the MIPS-R3000-like ISA subset.

The subset covers the instructions the Aurora III study exercises:

* integer ALU (register and immediate forms, shifts, HI/LO multiply/divide),
* loads and stores of bytes, halfwords and words,
* conditional branches and jumps, each with an architectural branch delay
  slot (the paper devotes Section 2.4 to the delay slot's consequences for
  a superscalar front end, so the functional machine honours it),
* coprocessor-1 floating point: arithmetic, compare/branch-on-condition,
  conversions, single/double loads and stores (the paper notes the FPU
  "also supports double-word loads and stores"), and register moves.

Each opcode carries a *timing kind* — the equivalence class the timing
simulator cares about (ALU, LOAD, BRANCH, FP_MUL, ...) — so the trace can be
compact while the functional semantics stay complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, unique


@unique
class Kind(IntEnum):
    """Timing equivalence class of an instruction.

    These are the classes the Aurora III timing model distinguishes:
    integer ops execute in one of the integer ALU pipes; memory ops go to
    the LSU; control flow is resolved in the front end via branch folding;
    FP ops are queued to the decoupled FPU by functional-unit class.
    """

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH = 3
    JUMP = 4
    NOP = 5
    FP_ADD = 6
    FP_MUL = 7
    FP_DIV = 8
    FP_CVT = 9
    FP_LOAD = 10
    FP_STORE = 11
    FP_MOVE = 12
    HALT = 13

    @property
    def is_memory(self) -> bool:
        """True if the instruction occupies the single memory port."""
        return self in _MEMORY_KINDS

    @property
    def is_fp(self) -> bool:
        """True if the instruction is dispatched to the decoupled FPU."""
        return self in _FP_KINDS

    @property
    def is_control(self) -> bool:
        """True for control-flow instructions (have a delay slot)."""
        return self in (Kind.BRANCH, Kind.JUMP)


_MEMORY_KINDS = frozenset(
    {Kind.LOAD, Kind.STORE, Kind.FP_LOAD, Kind.FP_STORE, Kind.FP_MOVE}
)
_FP_KINDS = frozenset(
    {
        Kind.FP_ADD,
        Kind.FP_MUL,
        Kind.FP_DIV,
        Kind.FP_CVT,
        Kind.FP_LOAD,
        Kind.FP_STORE,
        Kind.FP_MOVE,
    }
)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    ``operands`` is a format string over {d, s, t, i, j, fd, fs, ft, m}
    naming which fields :class:`Instruction` uses:

    * ``d``/``s``/``t`` — integer dest / first source / second source
    * ``fd``/``fs``/``ft`` — FP dest / sources
    * ``i`` — immediate, ``j`` — jump/branch target label, ``m`` — memory
      operand ``imm(rs)``.
    """

    name: str
    kind: Kind
    operands: str
    writes_int: bool = False
    writes_fp: bool = False
    reads_hi_lo: bool = False
    writes_hi_lo: bool = False
    double: bool = False  # operates on an even/odd FP pair


def _spec(name: str, kind: Kind, operands: str, **kw: bool) -> OpSpec:
    return OpSpec(name=name, kind=kind, operands=operands, **kw)


#: All opcodes in the subset, keyed by mnemonic.
OPCODES: dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> None:
    if spec.name in OPCODES:
        raise ValueError(f"duplicate opcode {spec.name}")
    OPCODES[spec.name] = spec


# --- integer ALU, three-register form -------------------------------------
for _name in ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"):
    _register(_spec(_name, Kind.ALU, "dst", writes_int=True))
for _name in ("sllv", "srlv", "srav"):
    _register(_spec(_name, Kind.ALU, "dst", writes_int=True))

# --- integer ALU, immediate form -------------------------------------------
for _name in ("addiu", "andi", "ori", "xori", "slti", "sltiu"):
    _register(_spec(_name, Kind.ALU, "dsi", writes_int=True))
for _name in ("sll", "srl", "sra"):
    _register(_spec(_name, Kind.ALU, "dsi", writes_int=True))
_register(_spec("lui", Kind.ALU, "di", writes_int=True))

# --- HI/LO multiply and divide ---------------------------------------------
for _name in ("mult", "multu", "div", "divu"):
    _register(_spec(_name, Kind.ALU, "st", writes_hi_lo=True))
for _name in ("mfhi", "mflo"):
    _register(_spec(_name, Kind.ALU, "d", writes_int=True, reads_hi_lo=True))

# --- loads and stores -------------------------------------------------------
for _name in ("lw", "lh", "lhu", "lb", "lbu"):
    _register(_spec(_name, Kind.LOAD, "dm", writes_int=True))
for _name in ("sw", "sh", "sb"):
    _register(_spec(_name, Kind.STORE, "tm"))

# --- control flow -----------------------------------------------------------
_register(_spec("beq", Kind.BRANCH, "stj"))
_register(_spec("bne", Kind.BRANCH, "stj"))
_register(_spec("blez", Kind.BRANCH, "sj"))
_register(_spec("bgtz", Kind.BRANCH, "sj"))
_register(_spec("bltz", Kind.BRANCH, "sj"))
_register(_spec("bgez", Kind.BRANCH, "sj"))
_register(_spec("j", Kind.JUMP, "j"))
_register(_spec("jal", Kind.JUMP, "j", writes_int=True))  # writes ra
_register(_spec("jr", Kind.JUMP, "s"))
_register(_spec("jalr", Kind.JUMP, "ds", writes_int=True))

# --- floating point arithmetic ----------------------------------------------
for _suffix, _dbl in ((".s", False), (".d", True)):
    _register(_spec("add" + _suffix, Kind.FP_ADD, "fdfsft", writes_fp=True, double=_dbl))
    _register(_spec("sub" + _suffix, Kind.FP_ADD, "fdfsft", writes_fp=True, double=_dbl))
    _register(_spec("abs" + _suffix, Kind.FP_ADD, "fdfs", writes_fp=True, double=_dbl))
    _register(_spec("neg" + _suffix, Kind.FP_ADD, "fdfs", writes_fp=True, double=_dbl))
    _register(_spec("mul" + _suffix, Kind.FP_MUL, "fdfsft", writes_fp=True, double=_dbl))
    _register(_spec("div" + _suffix, Kind.FP_DIV, "fdfsft", writes_fp=True, double=_dbl))
    _register(_spec("sqrt" + _suffix, Kind.FP_DIV, "fdfs", writes_fp=True, double=_dbl))
    _register(_spec("mov" + _suffix, Kind.FP_CVT, "fdfs", writes_fp=True, double=_dbl))
    for _cond in ("eq", "lt", "le"):
        _register(_spec(f"c.{_cond}{_suffix}", Kind.FP_ADD, "fsft", double=_dbl))

# --- conversions (between single, double, and integer word formats) ---------
for _name in ("cvt.d.s", "cvt.d.w"):
    _register(_spec(_name, Kind.FP_CVT, "fdfs", writes_fp=True, double=True))
for _name in ("cvt.s.d", "cvt.s.w", "cvt.w.s", "cvt.w.d"):
    _register(_spec(_name, Kind.FP_CVT, "fdfs", writes_fp=True))

# --- FP condition branches ---------------------------------------------------
_register(_spec("bc1t", Kind.BRANCH, "j"))
_register(_spec("bc1f", Kind.BRANCH, "j"))

# --- FP memory and moves ------------------------------------------------------
_register(_spec("lwc1", Kind.FP_LOAD, "fdm", writes_fp=True))
_register(_spec("swc1", Kind.FP_STORE, "ftm"))
_register(_spec("ldc1", Kind.FP_LOAD, "fdm", writes_fp=True, double=True))
_register(_spec("sdc1", Kind.FP_STORE, "ftm", double=True))
_register(_spec("mtc1", Kind.FP_MOVE, "tfd", writes_fp=True))
_register(_spec("mfc1", Kind.FP_MOVE, "dfs", writes_int=True))

# --- miscellaneous -------------------------------------------------------------
_register(_spec("nop", Kind.NOP, ""))
_register(_spec("halt", Kind.HALT, ""))


@dataclass
class Instruction:
    """One assembled instruction.

    Fields not used by the opcode stay at their defaults; ``label`` holds an
    unresolved branch/jump target until the assembler's second pass fills in
    ``target`` (a word index into the program).
    """

    op: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    fd: int = 0
    fs: int = 0
    ft: int = 0
    imm: int = 0
    label: str | None = None
    target: int | None = None
    #: program-relative word index, assigned at assembly time
    index: int = field(default=-1, compare=False)

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.op]

    @property
    def kind(self) -> Kind:
        return OPCODES[self.op].kind

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        spec = self.spec
        ops = []
        fmt = spec.operands
        if "fd" in fmt:
            ops.append(f"f{self.fd}")
        if "d" in fmt.replace("fd", ""):
            ops.append(f"r{self.rd}")
        if "fs" in fmt:
            ops.append(f"f{self.fs}")
        if "s" in fmt.replace("fs", "").replace("dst", "ds t").replace("fd", ""):
            ops.append(f"r{self.rs}")
        if "ft" in fmt:
            ops.append(f"f{self.ft}")
        if self.label is not None:
            ops.append(self.label)
        elif "i" in fmt or "m" in fmt:
            ops.append(str(self.imm))
        return parts[0] + " " + ", ".join(ops)
