"""MIPS-R3000-like ISA subset: registers, instructions, assembler, programs."""

from repro.isa.assembler import Assembler, AssemblyError, parse_asm
from repro.isa.disassembler import disassemble
from repro.isa.instructions import OPCODES, Instruction, Kind, OpSpec
from repro.isa.program import (
    DATA_BASE,
    HEAP_BASE,
    STACK_TOP,
    TEXT_BASE,
    WORD,
    Program,
    ProgramError,
)
from repro.isa.scheduler import schedule_load_use
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterError,
    fp_reg,
    fp_reg_name,
    int_reg,
    int_reg_name,
)

__all__ = [
    "Assembler",
    "AssemblyError",
    "parse_asm",
    "disassemble",
    "schedule_load_use",
    "OPCODES",
    "Instruction",
    "Kind",
    "OpSpec",
    "Program",
    "ProgramError",
    "DATA_BASE",
    "HEAP_BASE",
    "STACK_TOP",
    "TEXT_BASE",
    "WORD",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "RegisterError",
    "fp_reg",
    "fp_reg_name",
    "int_reg",
    "int_reg_name",
]
