"""Disassembler: turn assembled programs back into textual assembly.

The output is accepted by :func:`repro.isa.assembler.parse_asm`, giving a
round-trip property (assemble -> disassemble -> assemble yields the same
program) that the test suite verifies.  Code labels are synthesised for
every branch/jump target (``L<index>``); the data segment is emitted as
``.word`` directives with labels at addresses the code references.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Kind
from repro.isa.program import Program
from repro.isa.registers import fp_reg_name, int_reg_name

_BRANCH_FMT_TWO_SRC = {"beq", "bne"}
_BRANCH_FMT_ONE_SRC = {"blez", "bgtz", "bltz", "bgez"}


def _operand_text(ins: Instruction) -> str:
    """Render one instruction's operands (without its label targets)."""
    op = ins.op
    spec = ins.spec
    fmt = spec.operands
    if fmt == "dst":
        return f"{int_reg_name(ins.rd)}, {int_reg_name(ins.rs)}, {int_reg_name(ins.rt)}"
    if fmt == "dsi":
        return f"{int_reg_name(ins.rd)}, {int_reg_name(ins.rs)}, {ins.imm}"
    if fmt == "di":
        return f"{int_reg_name(ins.rd)}, {ins.imm}"
    if fmt == "st":
        return f"{int_reg_name(ins.rs)}, {int_reg_name(ins.rt)}"
    if fmt == "d":
        return int_reg_name(ins.rd)
    if fmt == "dm":
        return f"{int_reg_name(ins.rd)}, {ins.imm}({int_reg_name(ins.rs)})"
    if fmt == "tm":
        return f"{int_reg_name(ins.rt)}, {ins.imm}({int_reg_name(ins.rs)})"
    if fmt == "s":
        return int_reg_name(ins.rs)
    if fmt == "ds":
        return f"{int_reg_name(ins.rd)}, {int_reg_name(ins.rs)}"
    if fmt == "fdfsft":
        return f"{fp_reg_name(ins.fd)}, {fp_reg_name(ins.fs)}, {fp_reg_name(ins.ft)}"
    if fmt == "fdfs":
        return f"{fp_reg_name(ins.fd)}, {fp_reg_name(ins.fs)}"
    if fmt == "fsft":
        return f"{fp_reg_name(ins.fs)}, {fp_reg_name(ins.ft)}"
    if fmt == "fdm":
        return f"{fp_reg_name(ins.fd)}, {ins.imm}({int_reg_name(ins.rs)})"
    if fmt == "ftm":
        return f"{fp_reg_name(ins.ft)}, {ins.imm}({int_reg_name(ins.rs)})"
    if fmt == "tfd":
        return f"{int_reg_name(ins.rt)}, {fp_reg_name(ins.fd)}"
    if fmt == "dfs":
        return f"{int_reg_name(ins.rd)}, {fp_reg_name(ins.fs)}"
    if fmt == "":
        return ""
    raise ValueError(f"cannot render operands for {op!r} ({fmt!r})")


def disassemble(program: Program) -> str:
    """Disassemble a program to text `parse_asm` can re-assemble.

    Instructions with label operands (branches, ``j``/``jal``) reference
    synthesised ``L<index>`` labels.  The whole text is wrapped in
    ``.noreorder`` because delay slots are already explicit in the
    assembled stream.
    """
    targets: set[int] = set()
    for ins in program.text:
        if ins.target is not None:
            targets.add(ins.target)

    lines: list[str] = []
    if program.data:
        lines.append(".data")
        addresses = sorted(program.data)
        # group contiguous bytes into words where aligned
        index = 0
        label_count = 0
        while index < len(addresses):
            address = addresses[index]
            lines.append(f"blob{label_count}: .byte {program.data[address]}")
            run = [address]
            while (
                index + 1 < len(addresses)
                and addresses[index + 1] == run[-1] + 1
                and len(run) < 8
            ):
                index += 1
                run.append(addresses[index])
                lines[-1] += f", {program.data[addresses[index]]}"
            label_count += 1
            index += 1
        lines.append(".text")
    lines.append(".noreorder")
    for position, ins in enumerate(program.text):
        if position in targets:
            lines.append(f"L{position}:")
        if ins.target is not None:
            # branch/jump target reference
            if ins.op in _BRANCH_FMT_TWO_SRC:
                text = (
                    f"{ins.op} {int_reg_name(ins.rs)}, "
                    f"{int_reg_name(ins.rt)}, L{ins.target}"
                )
            elif ins.op in _BRANCH_FMT_ONE_SRC:
                text = f"{ins.op} {int_reg_name(ins.rs)}, L{ins.target}"
            elif ins.op in ("bc1t", "bc1f", "j", "jal"):
                text = f"{ins.op} L{ins.target}"
            else:
                raise ValueError(f"unexpected label-bearing op {ins.op!r}")
        else:
            operands = _operand_text(ins)
            text = f"{ins.op} {operands}" if operands else ins.op
        lines.append("    " + text)
    lines.append(".reorder")
    return "\n".join(lines) + "\n"
