"""Two-pass assembler for the MIPS-R3000-like subset.

Workload kernels build programs programmatically::

    asm = Assembler()
    asm.data_label("table")
    asm.word(*range(64))
    asm.label("loop")
    asm.lw("t0", 0, "a0")
    asm.addiu("a0", "a0", 4)
    asm.bne("a0", "a1", "loop")
    asm.halt()
    program = asm.assemble()

Every opcode in :data:`repro.isa.instructions.OPCODES` is available as a
method.  Control-flow instructions get an architectural branch delay slot:
by default the assembler fills it with a ``nop`` (like ``gas`` in reorder
mode); inside a ``with asm.noreorder():`` block the caller schedules the
slot itself, which the workload kernels use to fill slots the way a
compiler would.
"""

from __future__ import annotations

import contextlib
import struct
from collections.abc import Iterator

from repro.isa.instructions import OPCODES, Instruction, Kind, OpSpec
from repro.isa.program import DATA_BASE, WORD, Program, ProgramError
from repro.isa.registers import fp_reg, int_reg


class AssemblyError(ProgramError):
    """Raised when a program cannot be assembled."""


class Assembler:
    """Builds a :class:`~repro.isa.program.Program` in two passes.

    Pass one happens as the caller emits instructions and directives; pass
    two (in :meth:`assemble`) resolves label references to instruction
    indices and data addresses.
    """

    def __init__(self, data_base: int = DATA_BASE) -> None:
        self._text: list[Instruction] = []
        self._labels: dict[str, int] = {}  # code label -> instruction index
        self._data: dict[int, int] = {}  # byte address -> byte value
        self._data_labels: dict[str, int] = {}  # data label -> byte address
        self._data_cursor = data_base
        self._auto_delay_slot = True
        self._assembled = False

    # ------------------------------------------------------------------ text

    def label(self, name: str) -> None:
        """Define a code label at the current position."""
        self._check_label_free(name)
        self._labels[name] = len(self._text)

    @contextlib.contextmanager
    def noreorder(self) -> Iterator[None]:
        """Suppress automatic ``nop`` insertion in branch delay slots."""
        previous = self._auto_delay_slot
        self._auto_delay_slot = False
        try:
            yield
        finally:
            self._auto_delay_slot = previous

    def emit(self, instruction: Instruction) -> None:
        """Append one instruction, handling the delay slot convention."""
        if self._assembled:
            raise AssemblyError("cannot emit after assemble()")
        instruction.index = len(self._text)
        self._text.append(instruction)
        if self._auto_delay_slot and instruction.kind.is_control:
            slot = Instruction(op="nop")
            slot.index = len(self._text)
            self._text.append(slot)

    def _build(self, spec: OpSpec, args: tuple) -> Instruction:
        ins = Instruction(op=spec.name)
        fields = _operand_fields(spec.operands)
        if len(args) != len(fields):
            raise AssemblyError(
                f"{spec.name} expects {len(fields)} operand(s) "
                f"({spec.operands!r}), got {len(args)}"
            )
        for fld, value in zip(fields, args):
            if fld in ("d", "s", "t"):
                setattr(ins, "r" + fld, int_reg(value))
            elif fld in ("fd", "fs", "ft"):
                setattr(ins, fld, fp_reg(value))
            elif fld == "i":
                ins.imm = _check_imm(spec.name, value)
            elif fld == "j":
                ins.label = _check_label_ref(spec.name, value)
            elif fld == "m":
                offset, base = value
                ins.imm = _check_imm(spec.name, offset)
                ins.rs = int_reg(base)
            else:  # pragma: no cover - exhaustive by construction
                raise AssemblyError(f"bad operand field {fld!r}")
        return ins

    def op(self, mnemonic: str, *args) -> None:
        """Emit one instruction by mnemonic.

        Memory operands are passed as an ``(offset, base)`` pair, e.g.
        ``asm.op("lw", "t0", (4, "sp"))``.  The named wrappers generated
        below flatten that to ``asm.lw("t0", 4, "sp")``.
        """
        try:
            spec = OPCODES[mnemonic]
        except KeyError:
            raise AssemblyError(f"unknown opcode {mnemonic!r}") from None
        self.emit(self._build(spec, args))

    # ------------------------------------------------------ pseudo-instructions

    def li(self, rd: int | str, value: int) -> None:
        """Load a 32-bit constant (expands to lui/ori or addiu)."""
        value &= 0xFFFFFFFF
        if value < 0x8000 or value >= 0xFFFF8000:
            self.op("addiu", rd, "zero", _signed16(value))
        else:
            upper = (value >> 16) & 0xFFFF
            lower = value & 0xFFFF
            self.op("lui", rd, upper)
            if lower:
                self.op("ori", rd, rd, lower)

    def la(self, rd: int | str, label: str) -> None:
        """Load the address of a data label (resolved at assemble time)."""
        ins = Instruction(op="lui", rd=int_reg(rd), label=label, imm=0)
        self.emit(ins)
        ins2 = Instruction(op="ori", rd=int_reg(rd), rs=int_reg(rd), label=label)
        ins2.imm = -1  # marker: low half of label address
        self.emit(ins2)

    def move(self, rd: int | str, rs: int | str) -> None:
        self.op("addu", rd, rs, "zero")

    def b(self, target: str) -> None:
        """Unconditional branch (beq zero, zero, target)."""
        self.op("beq", "zero", "zero", target)

    def nop(self) -> None:
        self.op("nop")

    def halt(self) -> None:
        self.op("halt")

    # ------------------------------------------------------------------ data

    def data_label(self, name: str) -> int:
        """Define a data label at the current data cursor; returns address."""
        self._check_label_free(name)
        self._data_labels[name] = self._data_cursor
        return self._data_cursor

    def align(self, boundary: int = WORD) -> None:
        remainder = self._data_cursor % boundary
        if remainder:
            self._data_cursor += boundary - remainder

    def word(self, *values: int) -> None:
        """Emit 32-bit little-endian words into the data segment."""
        self.align(WORD)
        for value in values:
            for i, byte in enumerate(struct.pack("<i", _signed32(value))):
                self._data[self._data_cursor + i] = byte
            self._data_cursor += WORD

    def byte(self, *values: int) -> None:
        for value in values:
            self._data[self._data_cursor] = value & 0xFF
            self._data_cursor += 1

    def half(self, *values: int) -> None:
        self.align(2)
        for value in values:
            packed = struct.pack("<h", _signed16_wrap(value))
            self._data[self._data_cursor] = packed[0]
            self._data[self._data_cursor + 1] = packed[1]
            self._data_cursor += 2

    def float_single(self, *values: float) -> None:
        """Emit IEEE-754 single-precision values."""
        self.align(WORD)
        for value in values:
            for i, byte in enumerate(struct.pack("<f", value)):
                self._data[self._data_cursor + i] = byte
            self._data_cursor += WORD

    def float_double(self, *values: float) -> None:
        """Emit IEEE-754 double-precision values (8-byte aligned)."""
        self.align(8)
        for value in values:
            for i, byte in enumerate(struct.pack("<d", value)):
                self._data[self._data_cursor + i] = byte
            self._data_cursor += 8

    def space(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of zero-initialised space; returns its address."""
        address = self._data_cursor
        self._data_cursor += nbytes
        return address

    # ------------------------------------------------------------------ passes

    def assemble(self) -> Program:
        """Run pass two: resolve labels, produce the final Program."""
        program = Program()
        program.data = dict(self._data)
        program.symbols = dict(self._data_labels)
        for name, index in self._labels.items():
            program.symbols[name] = program.address_of(index)
        for ins in self._text:
            resolved = self._resolve(ins, program)
            program.text.append(resolved)
        self._assembled = True
        return program

    def _resolve(self, ins: Instruction, program: Program) -> Instruction:
        if ins.label is None:
            return ins
        if ins.op in ("lui", "ori"):
            if ins.label in self._data_labels:
                address = self._data_labels[ins.label]
            elif ins.label in self._labels:
                address = program.address_of(self._labels[ins.label])
            else:
                raise AssemblyError(f"undefined label {ins.label!r} in {ins.op}")
            half = address & 0xFFFF if ins.imm == -1 else (address >> 16) & 0xFFFF
            return Instruction(
                op=ins.op, rd=ins.rd, rs=ins.rs, imm=half, index=ins.index
            )
        if ins.label in self._labels:
            ins.target = self._labels[ins.label]
            return ins
        raise AssemblyError(f"undefined label {ins.label!r} in {ins.op}")

    def _check_label_free(self, name: str) -> None:
        if name in self._labels or name in self._data_labels:
            raise AssemblyError(f"label {name!r} defined twice")


def _operand_fields(fmt: str) -> list[str]:
    """Split an OpSpec operand format into field tokens.

    ``"fdfsft"`` -> ``["fd", "fs", "ft"]``;  ``"dsi"`` -> ``["d", "s", "i"]``.
    """
    fields = []
    i = 0
    while i < len(fmt):
        if fmt[i] == "f":
            fields.append(fmt[i : i + 2])
            i += 2
        else:
            fields.append(fmt[i])
            i += 1
    return fields


def _check_imm(op: str, value) -> int:
    if not isinstance(value, int):
        raise AssemblyError(f"{op}: immediate must be an int, got {value!r}")
    return value


def _check_label_ref(op: str, value) -> str:
    if not isinstance(value, str):
        raise AssemblyError(f"{op}: target must be a label name, got {value!r}")
    return value


def _signed16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


def _signed16_wrap(value: int) -> int:
    return _signed16(value & 0xFFFF)


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


def _make_op_method(name: str, spec: OpSpec):
    fields = _operand_fields(spec.operands)
    has_mem = "m" in fields

    if has_mem:
        # Memory ops take (reg, offset, base) flattened.
        def method(self: Assembler, *args):
            if len(args) != len(fields) + 1:
                raise AssemblyError(
                    f"{name} expects {len(fields) + 1} operands "
                    f"(reg, offset, base), got {len(args)}"
                )
            packed = []
            cursor = 0
            for fld in fields:
                if fld == "m":
                    packed.append((args[cursor], args[cursor + 1]))
                    cursor += 2
                else:
                    packed.append(args[cursor])
                    cursor += 1
            self.op(name, *packed)

    else:

        def method(self: Assembler, *args):
            self.op(name, *args)

    method.__name__ = name.replace(".", "_")
    method.__doc__ = f"Emit `{name}` ({spec.kind.name})."
    return method


# Generate one method per opcode: asm.addu(...), asm.add_d(...), asm.c_lt_s(...)
# Mnemonics that collide with Python keywords get a trailing underscore
# alias (asm.and_, asm.or_); the bare name still works via asm.op("and", ...).
for _name, _opspec in OPCODES.items():
    _method_name = _name.replace(".", "_")
    if not hasattr(Assembler, _method_name):
        _method = _make_op_method(_name, _opspec)
        setattr(Assembler, _method_name, _method)
        if _method_name in ("and", "or", "not", "xor"):
            setattr(Assembler, _method_name + "_", _method)


def parse_asm(source: str) -> Program:
    """Assemble textual assembly (a convenience front end for tests/examples).

    Supports labels (``name:``), comments (``# ...``), ``.data``/``.text``
    sections, ``.word``/``.byte``/``.half``/``.space``/``.float``/``.double``
    directives, ``.noreorder``/``.reorder``, and memory operands written as
    ``offset(base)``.
    """
    asm = Assembler()
    in_data = False
    noreorder_depth: list = []

    def enter_noreorder() -> None:
        ctx = asm.noreorder()
        ctx.__enter__()
        noreorder_depth.append(ctx)

    def exit_noreorder() -> None:
        if noreorder_depth:
            noreorder_depth.pop().__exit__(None, None, None)

    for raw_line in source.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        while line:
            first_token = line.split(None, 1)[0]
            if ":" not in first_token:
                break
            label_name, _, rest = line.partition(":")
            if in_data:
                asm.data_label(label_name.strip())
            else:
                asm.label(label_name.strip())
            line = rest.strip()
        if not line:
            continue
        mnemonic, _, operand_text = line.partition(" ")
        mnemonic = mnemonic.strip()
        operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()]
        if mnemonic == ".data":
            in_data = True
        elif mnemonic == ".text":
            in_data = False
        elif mnemonic == ".noreorder":
            enter_noreorder()
        elif mnemonic == ".reorder":
            exit_noreorder()
        elif mnemonic == ".word":
            asm.word(*[int(tok, 0) for tok in operands])
        elif mnemonic == ".half":
            asm.half(*[int(tok, 0) for tok in operands])
        elif mnemonic == ".byte":
            asm.byte(*[int(tok, 0) for tok in operands])
        elif mnemonic == ".float":
            asm.float_single(*[float(tok) for tok in operands])
        elif mnemonic == ".double":
            asm.float_double(*[float(tok) for tok in operands])
        elif mnemonic == ".space":
            asm.space(int(operands[0], 0))
        elif mnemonic == ".align":
            asm.align(int(operands[0], 0) if operands else WORD)
        elif mnemonic in ("li", "la", "move", "b"):
            _emit_pseudo(asm, mnemonic, operands)
        else:
            _emit_parsed(asm, mnemonic, operands)
    while noreorder_depth:
        exit_noreorder()
    return asm.assemble()


def _emit_pseudo(asm: Assembler, mnemonic: str, operands: list[str]) -> None:
    if mnemonic == "li":
        asm.li(operands[0], int(operands[1], 0))
    elif mnemonic == "la":
        asm.la(operands[0], operands[1])
    elif mnemonic == "move":
        asm.move(operands[0], operands[1])
    else:
        asm.b(operands[0])


def _emit_parsed(asm: Assembler, mnemonic: str, operands: list[str]) -> None:
    try:
        spec = OPCODES[mnemonic]
    except KeyError:
        raise AssemblyError(f"unknown opcode {mnemonic!r}") from None
    fields = _operand_fields(spec.operands)
    args: list = []
    cursor = 0
    for fld in fields:
        if cursor >= len(operands):
            raise AssemblyError(f"{mnemonic}: missing operand for field {fld!r}")
        token = operands[cursor]
        cursor += 1
        if fld == "m":
            if "(" not in token or not token.endswith(")"):
                raise AssemblyError(
                    f"{mnemonic}: memory operand must look like offset(base), "
                    f"got {token!r}"
                )
            offset_text, base_text = token[:-1].split("(", 1)
            args.append((int(offset_text or "0", 0), base_text))
        elif fld == "i":
            args.append(int(token, 0))
        elif fld == "j":
            args.append(token)
        else:
            args.append(token)
    if cursor != len(operands):
        raise AssemblyError(f"{mnemonic}: too many operands: {operands}")
    asm.op(mnemonic, *args)
