"""Static instruction scheduler — the paper's "better compiler
scheduling" conjecture, made executable.

The paper's conclusion notes that in the large model "most stalls were
caused by the three-cycle latency of the pipelined data cache.  Better
compiler scheduling could possibly remove some of this penalty."  The
benchmarks were compiled "with no additional code rescheduling", so this
module supplies exactly the missing pass: a conservative within-basic-
block list scheduler that hoists independent instructions into load-use
gaps.

The transformation is *provably architecture-preserving* under its own
constraints (checked again dynamically by the test suite, which runs
scheduled and unscheduled kernels to identical architectural state):

* only instructions strictly inside a basic block move — block leaders
  (branch targets), control-flow instructions and their delay slots stay
  put, so every branch target index is preserved;
* an instruction moves only if it has no register dependence (RAW, WAR,
  WAW, including HI/LO and the FP condition flag) on anything it jumps
  over;
* memory operations never reorder with respect to one another (alias
  analysis is out of scope — this is a peephole scheduler, not gcc).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, Kind
from repro.isa.program import Program

#: pseudo register ids used in read/write sets
_HI_LO = 64
_FP_COND = 65
_FP_BASE = 32

_LOAD_KINDS = frozenset({Kind.LOAD, Kind.FP_LOAD})
_MEM_KINDS = frozenset(
    {Kind.LOAD, Kind.STORE, Kind.FP_LOAD, Kind.FP_STORE, Kind.FP_MOVE}
)


@dataclass
class _Deps:
    reads: frozenset[int]
    writes: frozenset[int]
    is_mem: bool
    is_control: bool


def _field_reads(ins: Instruction) -> set[int]:
    spec = ins.spec
    fmt = spec.operands
    reads: set[int] = set()
    # Decode by explicit format cases to stay exact.
    if fmt in ("dst", "st"):
        reads.update((ins.rs, ins.rt))
    elif fmt in ("dsi", "ds"):
        reads.add(ins.rs)
    elif fmt in ("dm", "fdm"):
        reads.add(ins.rs)
    elif fmt == "tm":
        reads.update((ins.rs, ins.rt))
    elif fmt == "ftm":
        reads.update((ins.rs, _FP_BASE + ins.ft))
    elif fmt == "stj":
        reads.update((ins.rs, ins.rt))
    elif fmt in ("sj", "s"):
        reads.add(ins.rs)
    elif fmt == "fdfsft":
        reads.update((_FP_BASE + ins.fs, _FP_BASE + ins.ft))
    elif fmt == "fdfs":
        reads.add(_FP_BASE + ins.fs)
    elif fmt == "fsft":
        reads.update((_FP_BASE + ins.fs, _FP_BASE + ins.ft))
    elif fmt == "tfd":
        reads.add(ins.rt)
    elif fmt == "dfs":
        reads.add(_FP_BASE + ins.fs)
    if spec.reads_hi_lo:
        reads.add(_HI_LO)
    if ins.op in ("bc1t", "bc1f"):
        reads.add(_FP_COND)
    reads.discard(0)  # $zero is never a dependence
    return reads


def _field_writes(ins: Instruction) -> set[int]:
    spec = ins.spec
    writes: set[int] = set()
    if spec.writes_int:
        if ins.op == "jal":
            writes.add(31)
        elif ins.rd != 0:
            writes.add(ins.rd)
    if spec.writes_fp:
        fp = ins.fd
        writes.add(_FP_BASE + fp)
        if spec.double:
            writes.add(_FP_BASE + fp + 1)
    if spec.writes_hi_lo:
        writes.add(_HI_LO)
    if ins.op.startswith("c."):
        writes.add(_FP_COND)
    return writes


def _deps(ins: Instruction) -> _Deps:
    kind = ins.kind
    return _Deps(
        reads=frozenset(_field_reads(ins)),
        writes=frozenset(_field_writes(ins)),
        is_mem=kind in _MEM_KINDS,
        is_control=kind.is_control or kind is Kind.HALT,
    )


def _blocks(program: Program) -> list[tuple[int, int]]:
    """Basic blocks as (start, end) index ranges, ends exclusive.

    A block ends *before* a control instruction (the control op and its
    delay slot never move) and at every *leader*: branch/jump targets,
    call-return points (``jal``/``jalr`` resume at index+2, and ``jr``
    lands there later), and any text address materialised by an
    ``la``-style lui/ori pair (jump tables, computed calls) — those
    addresses live in registers or memory where the scheduler cannot see
    them, so the instructions they name must not move.
    """
    from repro.isa.program import TEXT_BASE

    leaders = {0}
    text = program.text
    for index, ins in enumerate(text):
        if ins.target is not None:
            leaders.add(ins.target)
        if ins.kind is Kind.JUMP and ins.op in ("jal", "jalr"):
            leaders.add(index + 2)  # the return point
        if (
            ins.op == "lui"
            and index + 1 < len(text)
            and text[index + 1].op == "ori"
            and text[index + 1].rd == ins.rd
        ):
            address = ((ins.imm & 0xFFFF) << 16) | (text[index + 1].imm & 0xFFFF)
            offset = address - TEXT_BASE
            if 0 <= offset < 4 * len(text) and offset % 4 == 0:
                leaders.add(offset // 4)
    boundaries = sorted(leaders | {len(program.text)})
    blocks: list[tuple[int, int]] = []
    for start, stop in zip(boundaries, boundaries[1:]):
        cursor = start
        index = start
        while index < stop:
            if program.text[index].kind.is_control or (
                program.text[index].kind is Kind.HALT
            ):
                blocks.append((cursor, index))
                cursor = index + 2  # skip the control op and its delay slot
                index = cursor
            else:
                index += 1
        if cursor < stop:
            blocks.append((cursor, stop))
    return [(s, e) for s, e in blocks if e - s >= 3]


def _can_hoist(mover: _Deps, over: list[_Deps]) -> bool:
    """May ``mover`` jump ahead of every instruction in ``over``?"""
    if mover.is_control:
        return False
    for other in over:
        if other.is_control:
            return False
        if mover.is_mem and other.is_mem:
            return False  # never reorder memory operations
        if mover.reads & other.writes:  # RAW
            return False
        if mover.writes & other.reads:  # WAR
            return False
        if mover.writes & other.writes:  # WAW
            return False
    return True


def schedule_load_use(program: Program, window: int = 6) -> tuple[Program, int]:
    """Fill load-use gaps by hoisting independent later instructions.

    Returns ``(scheduled_program, moves)``.  For each load whose result
    is consumed by the immediately following instruction, the scheduler
    searches up to ``window`` instructions ahead (within the basic block)
    for one that can legally move between the load and its use.
    """
    text = [
        Instruction(
            op=i.op, rd=i.rd, rs=i.rs, rt=i.rt, fd=i.fd, fs=i.fs, ft=i.ft,
            imm=i.imm, label=i.label, target=i.target,
        )
        for i in program.text
    ]
    deps = [_deps(ins) for ins in text]
    moves = 0
    for start, end in _blocks(program):
        position = start
        while position < end - 2:
            ins = text[position]
            if ins.kind not in _LOAD_KINDS:
                position += 1
                continue
            load_writes = deps[position].writes
            use = deps[position + 1]
            if not (load_writes & use.reads):
                position += 1
                continue
            # find a later instruction to slot between load and use
            limit = min(end, position + 2 + window)
            for candidate in range(position + 2, limit):
                over = deps[position + 1 : candidate]
                if _can_hoist(deps[candidate], over):
                    moved_ins = text.pop(candidate)
                    moved_dep = deps.pop(candidate)
                    text.insert(position + 1, moved_ins)
                    deps.insert(position + 1, moved_dep)
                    moves += 1
                    break
            position += 1
    scheduled = Program(
        text=text,
        data=dict(program.data),
        symbols=dict(program.symbols),
        entry=program.entry,
    )
    for index, ins in enumerate(scheduled.text):
        ins.index = index
    return scheduled, moves
