"""Program container: assembled text, initialised data, and symbols.

Memory map (chosen to mirror the conventional MIPS user-space layout):

* text starts at :data:`TEXT_BASE` — instruction addresses are byte
  addresses, four bytes per instruction,
* static data starts at :data:`DATA_BASE`,
* the stack pointer starts at :data:`STACK_TOP` and grows down,
* a heap region for dynamically carved allocations starts at
  :data:`HEAP_BASE` and grows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
STACK_TOP = 0x7FFF_FFF0
WORD = 4


class ProgramError(ValueError):
    """Raised for malformed programs (bad labels, unaligned data, ...)."""


@dataclass
class Program:
    """An assembled program ready for functional simulation.

    ``text`` holds instructions in program order; instruction *i* lives at
    byte address ``TEXT_BASE + 4*i``.  ``data`` maps byte addresses to
    initialised bytes.  ``symbols`` maps label names to byte addresses (code
    and data labels share one namespace).
    """

    text: list[Instruction] = field(default_factory=list)
    data: dict[int, int] = field(default_factory=dict)  # addr -> byte value
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE

    @property
    def num_instructions(self) -> int:
        return len(self.text)

    @property
    def text_bytes(self) -> int:
        """Static code footprint in bytes (what the I-cache sees)."""
        return len(self.text) * WORD

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at word index ``index``."""
        return TEXT_BASE + WORD * index

    def index_of(self, address: int) -> int:
        """Word index of the instruction at byte ``address``."""
        offset = address - TEXT_BASE
        if offset % WORD != 0 or not 0 <= offset < self.text_bytes:
            raise ProgramError(f"address {address:#x} is not in the text segment")
        return offset // WORD

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise ProgramError(f"undefined symbol {name!r}") from None

    def instruction_at(self, address: int) -> Instruction:
        return self.text[self.index_of(address)]
