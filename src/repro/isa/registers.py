"""Register definitions for the MIPS-R3000-like ISA subset.

The Aurora III implements the MIPS R3000 ISA (paper, Section 1).  We model
the 32 general-purpose integer registers with their conventional software
names and the 32 floating-point registers of coprocessor 1.  Double-precision
values occupy an even/odd FP register pair, exactly as on the R3000; the
FPU's 32x64 register file (paper, Section 3.1) is visible to software as 32
single-precision registers pairable into 16 doubles.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Conventional MIPS software names for the integer registers, by number.
INT_REG_NAMES: tuple[str, ...] = (
    "zero",
    "at",
    "v0",
    "v1",
    "a0",
    "a1",
    "a2",
    "a3",
    "t0",
    "t1",
    "t2",
    "t3",
    "t4",
    "t5",
    "t6",
    "t7",
    "s0",
    "s1",
    "s2",
    "s3",
    "s4",
    "s5",
    "s6",
    "s7",
    "t8",
    "t9",
    "k0",
    "k1",
    "gp",
    "sp",
    "fp",
    "ra",
)

#: Map from every accepted spelling ("t0", "$t0", "r8", "$8") to number.
_INT_REG_NUMBERS: dict[str, int] = {}
for _num, _name in enumerate(INT_REG_NAMES):
    _INT_REG_NUMBERS[_name] = _num
    _INT_REG_NUMBERS["$" + _name] = _num
    _INT_REG_NUMBERS["r%d" % _num] = _num
    _INT_REG_NUMBERS["$%d" % _num] = _num

_FP_REG_NUMBERS: dict[str, int] = {}
for _num in range(NUM_FP_REGS):
    _FP_REG_NUMBERS["f%d" % _num] = _num
    _FP_REG_NUMBERS["$f%d" % _num] = _num


class RegisterError(ValueError):
    """Raised for an unknown register spelling or an invalid register use."""


def int_reg(spec: int | str) -> int:
    """Resolve an integer register specifier to its number (0-31).

    Accepts an int already in range, a conventional name ("t0", "$sp"),
    or a numeric name ("r8", "$8").
    """
    if isinstance(spec, int):
        if 0 <= spec < NUM_INT_REGS:
            return spec
        raise RegisterError(f"integer register number out of range: {spec}")
    key = spec.strip().lower()
    try:
        return _INT_REG_NUMBERS[key]
    except KeyError:
        raise RegisterError(f"unknown integer register: {spec!r}") from None


def fp_reg(spec: int | str) -> int:
    """Resolve a floating-point register specifier to its number (0-31)."""
    if isinstance(spec, int):
        if 0 <= spec < NUM_FP_REGS:
            return spec
        raise RegisterError(f"FP register number out of range: {spec}")
    key = spec.strip().lower()
    try:
        return _FP_REG_NUMBERS[key]
    except KeyError:
        raise RegisterError(f"unknown FP register: {spec!r}") from None


def fp_double_reg(spec: int | str) -> int:
    """Resolve an FP register that names a double-precision pair.

    Doubles live in even/odd pairs on the R3000; the even register names
    the pair, so an odd register here is a programming error.
    """
    num = fp_reg(spec)
    if num % 2 != 0:
        raise RegisterError(
            f"double-precision values must use an even FP register, got f{num}"
        )
    return num


def int_reg_name(num: int) -> str:
    """Conventional name ("t0") for an integer register number."""
    if not 0 <= num < NUM_INT_REGS:
        raise RegisterError(f"integer register number out of range: {num}")
    return INT_REG_NAMES[num]


def fp_reg_name(num: int) -> str:
    """Name ("f4") for an FP register number."""
    if not 0 <= num < NUM_FP_REGS:
        raise RegisterError(f"FP register number out of range: {num}")
    return "f%d" % num
