"""Register-Bit-Equivalent (RBE) cost model — paper Table 2.

The RBE model of Mulder et al. normalises area to the cost of one 1-bit
static latch (~16 transistors, ~3600 um^2 in the GaAs DCFL process).
Table 2 gives the measured per-element costs from the Aurora III layout:

    IPU element                      RBE       FPU element             RBE
    1 KB cache block               8,000       data resource block   4,000
    2 KB cache block              12,000       queue entry (instr)      50
    4 KB cache block              20,000       queue entry (data)       80
    write-cache line                 320       add unit (1-5 cy)  5000-1250
    prefetch line                    320       mul unit (1-5 cy)  6875-2500
    reorder-buffer entry             200       div unit (10-30 cy) 2500-625
    MSHR entry                        50       cvt unit (1-5 cy)  2500-1250
    integer execution pipeline     8,192

Unit costs fall as latency rises (less parallel hardware); we linearly
interpolate between the endpoints the paper gives.  Removing a unit's
pipeline latches saves ~25 % of its area (Section 5.10), which the model
applies for non-pipelined add/multiply units.

Per the paper, interconnect overhead is assumed to scale with the sum of
element areas, and the off-chip data cache is *not* costed (it lives on
separate SRAM chips).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FPUConfig, MachineConfig

#: Cache-block cost by size in bytes (Table 2, measured points).
CACHE_BLOCK_RBE = {1024: 8_000.0, 2048: 12_000.0, 4096: 20_000.0}
WRITE_CACHE_LINE_RBE = 320.0
PREFETCH_LINE_RBE = 320.0
ROB_ENTRY_RBE = 200.0
MSHR_ENTRY_RBE = 50.0
INTEGER_PIPELINE_RBE = 8_192.0

FPU_DATA_RESOURCE_RBE = 4_000.0
FPU_IQ_ENTRY_RBE = 50.0
FPU_DATA_QUEUE_ENTRY_RBE = 80.0
#: (min_latency, cost_at_min, max_latency, cost_at_max) per unit.
FPU_UNIT_RANGES = {
    "add": (1, 5_000.0, 5, 1_250.0),
    "mul": (1, 6_875.0, 5, 2_500.0),
    "div": (10, 2_500.0, 30, 625.0),
    "cvt": (1, 2_500.0, 5, 1_250.0),
}
#: Fraction of a unit's area spent on pipeline latches (Section 5.10).
PIPELINE_LATCH_FRACTION = 0.25

#: One RBE in square microns / transistors, for absolute-area estimates.
RBE_AREA_UM2 = 3600.0
RBE_TRANSISTORS = 16.0


class CostError(ValueError):
    """Raised for sizes the model cannot cost."""


def cache_block_cost(size_bytes: int) -> float:
    """RBE cost of an on-chip cache block of the given size.

    Exact at the Table 2 points (1/2/4 KB); piecewise-linear between
    them and linearly extrapolated outside (using the nearest segment's
    slope), so sensitivity sweeps can cost non-tabled sizes.
    """
    if size_bytes <= 0:
        raise CostError("cache size must be positive")
    points = sorted(CACHE_BLOCK_RBE.items())
    if size_bytes in CACHE_BLOCK_RBE:
        return CACHE_BLOCK_RBE[size_bytes]
    # locate the segment
    if size_bytes < points[0][0]:
        (x0, y0), (x1, y1) = points[0], points[1]
    elif size_bytes > points[-1][0]:
        (x0, y0), (x1, y1) = points[-2], points[-1]
    else:
        (x0, y0), (x1, y1) = points[0], points[1]
        for left, right in zip(points, points[1:]):
            if left[0] <= size_bytes <= right[0]:
                (x0, y0), (x1, y1) = left, right
                break
    slope = (y1 - y0) / (x1 - x0)
    cost = y0 + slope * (size_bytes - x0)
    return max(cost, 0.0)


def fp_unit_cost(unit: str, latency: int, pipelined: bool = True) -> float:
    """RBE cost of one FPU functional unit at the given latency."""
    try:
        lat_min, cost_max, lat_max, cost_min = FPU_UNIT_RANGES[unit]
    except KeyError:
        raise CostError(f"unknown FPU unit {unit!r}") from None
    clamped = min(max(latency, lat_min), lat_max)
    fraction = (clamped - lat_min) / (lat_max - lat_min)
    cost = cost_max + fraction * (cost_min - cost_max)
    if not pipelined:
        cost *= 1.0 - PIPELINE_LATCH_FRACTION
    return cost


@dataclass
class CostBreakdown:
    """Per-element RBE costs plus the total."""

    items: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, cost: float) -> None:
        self.items[name] = self.items.get(name, 0.0) + cost

    @property
    def total(self) -> float:
        return sum(self.items.values())

    @property
    def area_um2(self) -> float:
        return self.total * RBE_AREA_UM2

    @property
    def transistors(self) -> float:
        return self.total * RBE_TRANSISTORS

    def render(self, title: str = "cost") -> str:
        lines = [f"{title} (RBE)"]
        for name, cost in sorted(self.items.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<28} {cost:>10,.0f}")
        lines.append(f"  {'TOTAL':<28} {self.total:>10,.0f}")
        return "\n".join(lines)


def ipu_cost(config: MachineConfig, include_prefetch: bool = True) -> CostBreakdown:
    """Cost the IPU side of a machine configuration (Figure 4/5/8 axes).

    The external data cache is excluded, exactly as in the paper's
    analysis (Section 4.2): die-size limits put it on separate SRAM
    chips, so on-chip resource trade-offs do not include it.
    """
    breakdown = CostBreakdown()
    breakdown.add("instruction cache", cache_block_cost(config.icache_bytes))
    breakdown.add(
        "write cache", config.writecache_lines * WRITE_CACHE_LINE_RBE
    )
    if include_prefetch and config.prefetch_enabled:
        lines = config.prefetch_buffers * config.prefetch_line_depth
        breakdown.add("prefetch buffers", lines * PREFETCH_LINE_RBE)
    breakdown.add("reorder buffer", config.rob_entries * ROB_ENTRY_RBE)
    breakdown.add("MSHRs", config.mshr_entries * MSHR_ENTRY_RBE)
    breakdown.add(
        "execution pipelines", config.issue_width * INTEGER_PIPELINE_RBE
    )
    return breakdown


def fpu_cost(config: FPUConfig) -> CostBreakdown:
    """Cost the FPU side (Figure 9's x-axes)."""
    breakdown = CostBreakdown()
    breakdown.add("register file + scoreboard", FPU_DATA_RESOURCE_RBE)
    breakdown.add(
        "instruction queue", config.instruction_queue * FPU_IQ_ENTRY_RBE
    )
    breakdown.add("load queue", config.load_queue * FPU_DATA_QUEUE_ENTRY_RBE)
    breakdown.add("store queue", config.store_queue * FPU_DATA_QUEUE_ENTRY_RBE)
    breakdown.add("reorder buffer", config.rob_entries * ROB_ENTRY_RBE)
    breakdown.add(
        "add unit", fp_unit_cost("add", config.add_latency, config.add_pipelined)
    )
    breakdown.add(
        "multiply unit",
        fp_unit_cost("mul", config.mul_latency, config.mul_pipelined),
    )
    breakdown.add("divide unit", fp_unit_cost("div", config.div_latency))
    breakdown.add(
        "convert unit",
        fp_unit_cost("cvt", config.cvt_latency, config.cvt_pipelined),
    )
    return breakdown


def machine_cost(config: MachineConfig, include_fpu: bool = False) -> CostBreakdown:
    """Total machine cost; the integer studies exclude the FPU."""
    breakdown = ipu_cost(config)
    if include_fpu:
        for name, cost in fpu_cost(config.fpu).items.items():
            breakdown.add("FPU " + name, cost)
    return breakdown


def total_cost(config: MachineConfig, include_fpu: bool = False) -> float:
    """Scalar RBE total for one machine point.

    The single number every cost/CPI plot and frontier ranks on —
    Figure 8 and the guided explorer both call this instead of summing
    IPU and FPU breakdowns themselves, so "the cost of a config" has
    exactly one definition.
    """
    return machine_cost(config, include_fpu=include_fpu).total
