"""Dynamic-trace infrastructure.

A trace is the interchange format between the functional simulator
(:mod:`repro.func.machine`) and the timing models (:mod:`repro.core`).
Each record is a compact 6-tuple of ints::

    (pc, kind, dst, src1, src2, addr)

* ``pc`` — byte address of the instruction,
* ``kind`` — :class:`repro.isa.instructions.Kind` value,
* ``dst``/``src1``/``src2`` — unified register ids (below), -1 when absent,
* ``addr`` — effective byte address for memory operations; for control-flow
  instructions, the *taken* target address, or 0 when not taken.

Unified register-id space (so one scoreboard array covers all namespaces):

* 0–31   integer registers (id 0, ``$zero``, is never recorded as a
  dependency — reads of it are always ready and writes are discarded),
* 32–63  FP registers (``32 + n``),
* 64, 65 HI and LO.
"""

from __future__ import annotations

import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import Kind

# Unified register-id space.
FP_REG_BASE = 32
HI_REG = 64
LO_REG = 65
NUM_UNIFIED_REGS = 66
NO_REG = -1

#: Type alias used throughout: one trace record.
TraceRecord = tuple[int, int, int, int, int, int]

_CONTROL_KINDS = (int(Kind.BRANCH), int(Kind.JUMP))
_MEMORY_KINDS = frozenset(
    int(k)
    for k in (Kind.LOAD, Kind.STORE, Kind.FP_LOAD, Kind.FP_STORE, Kind.FP_MOVE)
)
_FP_KINDS = frozenset(
    int(k)
    for k in (
        Kind.FP_ADD,
        Kind.FP_MUL,
        Kind.FP_DIV,
        Kind.FP_CVT,
        Kind.FP_LOAD,
        Kind.FP_STORE,
        Kind.FP_MOVE,
    )
)


@dataclass
class TraceStats:
    """Summary statistics over a trace (instruction mix, footprints)."""

    total: int = 0
    by_kind: dict[Kind, int] = field(default_factory=dict)
    taken_branches: int = 0
    unique_code_lines: int = 0
    unique_data_lines: int = 0
    line_size: int = 32

    @property
    def loads(self) -> int:
        return self.by_kind.get(Kind.LOAD, 0) + self.by_kind.get(Kind.FP_LOAD, 0)

    @property
    def stores(self) -> int:
        return self.by_kind.get(Kind.STORE, 0) + self.by_kind.get(Kind.FP_STORE, 0)

    @property
    def fp_ops(self) -> int:
        return sum(count for kind, count in self.by_kind.items() if kind.is_fp)

    def fraction(self, kind: Kind) -> float:
        if self.total == 0:
            return 0.0
        return self.by_kind.get(kind, 0) / self.total

    @property
    def code_footprint_bytes(self) -> int:
        return self.unique_code_lines * self.line_size

    @property
    def data_footprint_bytes(self) -> int:
        return self.unique_data_lines * self.line_size


def compute_stats(trace, line_size: int = 32) -> TraceStats:
    """Compute mix and footprint statistics for a trace.

    Accepts a plain ``list[TraceRecord]`` or a
    :class:`~repro.func.prepared.PreparedTrace`; the prepared form is
    computed vectorized over its numpy columns (identical results — the
    regression test in ``tests/test_prepared.py`` holds both
    implementations to exact equality on both suites).
    """
    from repro.func import prepared as _prepared

    if isinstance(trace, _prepared.PreparedTrace):
        return _prepared.compute_stats_prepared(trace, line_size)
    stats = TraceStats(line_size=line_size)
    by_kind: dict[int, int] = {}
    code_lines: set[int] = set()
    data_lines: set[int] = set()
    shift = line_size.bit_length() - 1
    taken = 0
    for pc, kind, _dst, _s1, _s2, addr in trace:
        by_kind[kind] = by_kind.get(kind, 0) + 1
        code_lines.add(pc >> shift)
        if kind in _MEMORY_KINDS and kind != int(Kind.FP_MOVE):
            data_lines.add(addr >> shift)
        elif kind in _CONTROL_KINDS and addr:
            taken += 1
    stats.total = len(trace)
    stats.by_kind = {Kind(k): v for k, v in by_kind.items()}
    stats.taken_branches = taken
    stats.unique_code_lines = len(code_lines)
    stats.unique_data_lines = len(data_lines)
    return stats


#: On-disk trace archive format version (bump on incompatible layout change).
TRACE_FILE_VERSION = 1


class TraceIOError(ValueError):
    """A trace archive is missing, malformed, or from a different format."""


def save_trace(path: str, trace: list[TraceRecord]) -> None:
    """Persist a trace as a compressed, versioned numpy archive."""
    array = np.asarray(trace, dtype=np.int64).reshape(len(trace), 6)
    np.savez_compressed(
        path,
        trace=array,
        version=np.int64(TRACE_FILE_VERSION),
        count=np.int64(len(trace)),
    )


def load_trace(path: str) -> list[TraceRecord]:
    """Load a trace saved with :func:`save_trace`.

    Raises :class:`TraceIOError` on unreadable files, a version mismatch,
    or a malformed record array — callers (the persistent trace cache)
    treat that as a miss rather than feeding garbage to the timing model.
    """
    try:
        with np.load(path) as archive:
            names = set(archive.files)
            version = int(archive["version"]) if "version" in names else None
            array = archive["trace"] if "trace" in names else None
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as error:
        raise TraceIOError(f"{path}: unreadable trace archive: {error}") from None
    if array is None:
        raise TraceIOError(f"{path}: no 'trace' array in archive")
    if version is not None and version != TRACE_FILE_VERSION:
        raise TraceIOError(
            f"{path}: trace format version {version}, "
            f"expected {TRACE_FILE_VERSION}"
        )
    if array.ndim != 2 or (array.size and array.shape[1] != 6):
        raise TraceIOError(
            f"{path}: trace array has shape {array.shape}, expected (n, 6)"
        )
    if not np.issubdtype(array.dtype, np.integer):
        raise TraceIOError(
            f"{path}: trace array dtype {array.dtype} is not integral"
        )
    return [tuple(int(v) for v in row) for row in array]


def save_trace_array(path: str, array: np.ndarray) -> None:
    """Persist a trace's ``(n, 6)`` array uncompressed (cache format v2).

    A plain ``.npy`` file, so readers can map it with
    ``np.load(mmap_mode="r")`` and parallel workers share the pages
    through the OS page cache instead of each re-decompressing a zip
    archive (the v1 ``save_trace`` format).
    """
    if array.ndim != 2 or (array.size and array.shape[1] != 6):
        raise ValueError(
            f"trace array must have shape (n, 6), got {array.shape}"
        )
    np.save(path, np.ascontiguousarray(array, dtype=np.int64))


def load_trace_array(path: str, *, mmap: bool = True) -> np.ndarray:
    """Load a v2 trace array, memory-mapped read-only by default.

    Raises :class:`TraceIOError` on unreadable/truncated files or a
    malformed array — the trace cache treats that as a miss and deletes
    the entry (self-healing, same contract as :func:`load_trace`).
    """
    try:
        array = np.load(path, mmap_mode="r" if mmap else None)
    except (OSError, ValueError, EOFError) as error:
        raise TraceIOError(f"{path}: unreadable trace array: {error}") from None
    if not isinstance(array, np.ndarray):
        raise TraceIOError(f"{path}: not a numpy array file")
    if array.ndim != 2 or (array.size and array.shape[1] != 6):
        raise TraceIOError(
            f"{path}: trace array has shape {array.shape}, expected (n, 6)"
        )
    if not np.issubdtype(array.dtype, np.integer):
        raise TraceIOError(
            f"{path}: trace array dtype {array.dtype} is not integral"
        )
    return array


def file_crc32(path: str, chunk_bytes: int = 1 << 22) -> tuple[int, int]:
    """``(crc32, size)`` of a file, streamed in chunks.

    Used by the trace cache to checksum v2 entries: chunked reads keep
    memory flat on factor-1.0 traces, and the pages land in the OS page
    cache, so the mmap load that follows a successful verify is free.
    Raises :class:`TraceIOError` on unreadable files.
    """
    crc = 0
    size = 0
    try:
        with open(path, "rb") as handle:
            while True:
                chunk = handle.read(chunk_bytes)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                size += len(chunk)
    except OSError as error:
        raise TraceIOError(f"{path}: unreadable for checksum: {error}") from None
    return crc, size


def is_memory_kind(kind: int) -> bool:
    return kind in _MEMORY_KINDS


def is_fp_kind(kind: int) -> bool:
    return kind in _FP_KINDS
