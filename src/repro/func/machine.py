"""Functional (architectural) simulator for the ISA subset.

Executes an assembled :class:`~repro.isa.program.Program` with full MIPS
branch-delay-slot semantics and emits one trace record per dynamic
instruction (see :mod:`repro.func.trace` for the record format).  The
machine models architectural state only — registers, HI/LO, the FP register
file, the FP condition flag, and memory — the timing models live in
:mod:`repro.core`.

FP values are held as Python floats in the register file and converted to
IEEE-754 bit patterns only at memory boundaries; the paper's study is a
timing study, so rounding-mode fidelity inside the register file is not
required (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.func.memory import SparseMemory
from repro.func.trace import FP_REG_BASE, HI_REG, NO_REG, TraceRecord, TraceStats, compute_stats
from repro.isa.instructions import Instruction, Kind
from repro.isa.program import STACK_TOP, TEXT_BASE, WORD, Program

_MASK32 = 0xFFFFFFFF


class SimulationError(Exception):
    """Raised for runaway programs, bad control flow, or illegal state."""


def _s32(value: int) -> int:
    """Wrap to signed 32-bit."""
    value &= _MASK32
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


def _u32(value: int) -> int:
    return value & _MASK32


@dataclass
class MachineResult:
    """Outcome of one functional run."""

    trace: list[TraceRecord]
    instructions: int
    halted: bool
    registers: list[int]
    fp_registers: list[float]
    memory: SparseMemory
    program: Program

    def stats(self, line_size: int = 32) -> TraceStats:
        return compute_stats(self.trace, line_size=line_size)


@dataclass
class Machine:
    """Architectural state plus the execution engine."""

    program: Program
    collect_trace: bool = True
    memory: SparseMemory = field(default_factory=SparseMemory)

    def __post_init__(self) -> None:
        self.regs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.hi = 0
        self.lo = 0
        self.fp_cond = False
        self.regs[29] = STACK_TOP  # $sp
        self.memory.load_initial(self.program.data)
        self._halted = False

    # ------------------------------------------------------------------ run

    def run(self, max_instructions: int = 5_000_000) -> MachineResult:
        """Execute until ``halt`` or ``max_instructions`` (then raise)."""
        text = self.program.text
        base = TEXT_BASE
        trace: list[TraceRecord] = []
        append = trace.append
        collect = self.collect_trace
        pc = self.program.entry
        npc = pc + WORD
        executed = 0
        limit = max_instructions
        text_end = base + len(text) * WORD
        while True:
            if not base <= pc < text_end:
                raise SimulationError(
                    f"control flow left the text segment: pc={pc:#x}"
                )
            ins = text[(pc - base) >> 2]
            record = self._execute(ins, pc)
            executed += 1
            if collect:
                append(record)
            if self._halted:
                break
            target = self._branch_target
            if target is not None:
                pc, npc = npc, target
                self._branch_target = None
            else:
                pc, npc = npc, npc + WORD
            if executed >= limit:
                raise SimulationError(
                    f"exceeded max_instructions={max_instructions} "
                    "without reaching halt"
                )
        return MachineResult(
            trace=trace,
            instructions=executed,
            halted=True,
            registers=list(self.regs),
            fp_registers=list(self.fregs),
            memory=self.memory,
            program=self.program,
        )

    # ---------------------------------------------------------------- execute

    _branch_target: int | None = None

    def _execute(self, ins: Instruction, pc: int) -> TraceRecord:
        handler = _HANDLERS[ins.op]
        return handler(self, ins, pc)


# ---------------------------------------------------------------------------
# Handlers.  Each returns the trace record for the executed instruction.
# The handler table is built once at import time.
# ---------------------------------------------------------------------------

_HANDLERS: dict = {}


def _handler(name: str):
    def wrap(fn):
        _HANDLERS[name] = fn
        return fn

    return wrap


def _dst_id(rd: int) -> int:
    return rd if rd != 0 else NO_REG


def _src_id(r: int) -> int:
    return r if r != 0 else NO_REG


def _wr(machine: Machine, rd: int, value: int) -> None:
    if rd != 0:
        machine.regs[rd] = _s32(value)


# -- three-register ALU ------------------------------------------------------

_ALU_RRR = {
    "addu": lambda a, b: a + b,
    "subu": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
    "slt": lambda a, b: 1 if a < b else 0,
    "sltu": lambda a, b: 1 if _u32(a) < _u32(b) else 0,
    "sllv": lambda a, b: a << (b & 31),
    "srlv": lambda a, b: _u32(a) >> (b & 31),
    "srav": lambda a, b: a >> (b & 31),
}

for _name, _fn in _ALU_RRR.items():

    def _make_rrr(fn):
        def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
            regs = machine.regs
            _wr(machine, ins.rd, fn(regs[ins.rs], regs[ins.rt]))
            return (
                pc,
                int(Kind.ALU),
                _dst_id(ins.rd),
                _src_id(ins.rs),
                _src_id(ins.rt),
                0,
            )

        return run

    _HANDLERS[_name] = _make_rrr(_fn)

# -- immediate ALU -------------------------------------------------------------

_ALU_RRI = {
    "addiu": lambda a, imm: a + imm,
    "andi": lambda a, imm: a & (imm & 0xFFFF),
    "ori": lambda a, imm: a | (imm & 0xFFFF),
    "xori": lambda a, imm: a ^ (imm & 0xFFFF),
    "slti": lambda a, imm: 1 if a < imm else 0,
    "sltiu": lambda a, imm: 1 if _u32(a) < _u32(imm) else 0,
    "sll": lambda a, imm: a << (imm & 31),
    "srl": lambda a, imm: _u32(a) >> (imm & 31),
    "sra": lambda a, imm: a >> (imm & 31),
}

for _name, _fn in _ALU_RRI.items():

    def _make_rri(fn):
        def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
            _wr(machine, ins.rd, fn(machine.regs[ins.rs], ins.imm))
            return (
                pc,
                int(Kind.ALU),
                _dst_id(ins.rd),
                _src_id(ins.rs),
                NO_REG,
                0,
            )

        return run

    _HANDLERS[_name] = _make_rri(_fn)


@_handler("lui")
def _lui(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    _wr(machine, ins.rd, (ins.imm & 0xFFFF) << 16)
    return (pc, int(Kind.ALU), _dst_id(ins.rd), NO_REG, NO_REG, 0)


# -- HI/LO multiply and divide --------------------------------------------------


@_handler("mult")
def _mult(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    product = machine.regs[ins.rs] * machine.regs[ins.rt]
    machine.lo = _s32(product)
    machine.hi = _s32(product >> 32)
    return (pc, int(Kind.ALU), HI_REG, _src_id(ins.rs), _src_id(ins.rt), 0)


@_handler("multu")
def _multu(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    product = _u32(machine.regs[ins.rs]) * _u32(machine.regs[ins.rt])
    machine.lo = _s32(product)
    machine.hi = _s32(product >> 32)
    return (pc, int(Kind.ALU), HI_REG, _src_id(ins.rs), _src_id(ins.rt), 0)


@_handler("div")
def _div(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    divisor = machine.regs[ins.rt]
    dividend = machine.regs[ins.rs]
    if divisor == 0:
        machine.lo, machine.hi = 0, 0  # R3000 leaves these undefined
    else:
        quotient = abs(dividend) // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            quotient = -quotient
        machine.lo = _s32(quotient)
        machine.hi = _s32(dividend - quotient * divisor)
    return (pc, int(Kind.ALU), HI_REG, _src_id(ins.rs), _src_id(ins.rt), 0)


@_handler("divu")
def _divu(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    divisor = _u32(machine.regs[ins.rt])
    dividend = _u32(machine.regs[ins.rs])
    if divisor == 0:
        machine.lo, machine.hi = 0, 0
    else:
        machine.lo = _s32(dividend // divisor)
        machine.hi = _s32(dividend % divisor)
    return (pc, int(Kind.ALU), HI_REG, _src_id(ins.rs), _src_id(ins.rt), 0)


@_handler("mfhi")
def _mfhi(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    _wr(machine, ins.rd, machine.hi)
    return (pc, int(Kind.ALU), _dst_id(ins.rd), HI_REG, NO_REG, 0)


@_handler("mflo")
def _mflo(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    _wr(machine, ins.rd, machine.lo)
    return (pc, int(Kind.ALU), _dst_id(ins.rd), HI_REG, NO_REG, 0)


# -- loads and stores -------------------------------------------------------------


def _make_load(reader_name: str, **reader_kwargs):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        address = _u32(machine.regs[ins.rs] + ins.imm)
        reader = getattr(machine.memory, reader_name)
        _wr(machine, ins.rd, reader(address, **reader_kwargs))
        return (
            pc,
            int(Kind.LOAD),
            _dst_id(ins.rd),
            _src_id(ins.rs),
            NO_REG,
            address,
        )

    return run


_HANDLERS["lw"] = _make_load("read_word")
_HANDLERS["lh"] = _make_load("read_half", signed=True)
_HANDLERS["lhu"] = _make_load("read_half", signed=False)
_HANDLERS["lb"] = _make_load("read_byte", signed=True)
_HANDLERS["lbu"] = _make_load("read_byte", signed=False)


def _make_store(writer_name: str):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        address = _u32(machine.regs[ins.rs] + ins.imm)
        writer = getattr(machine.memory, writer_name)
        writer(address, machine.regs[ins.rt])
        return (
            pc,
            int(Kind.STORE),
            NO_REG,
            _src_id(ins.rs),
            _src_id(ins.rt),
            address,
        )

    return run


_HANDLERS["sw"] = _make_store("write_word")
_HANDLERS["sh"] = _make_store("write_half")
_HANDLERS["sb"] = _make_store("write_byte")


# -- control flow -------------------------------------------------------------------


def _branch_record(pc: int, taken: bool, program_target: int, rs: int, rt: int) -> TraceRecord:
    return (
        pc,
        int(Kind.BRANCH),
        NO_REG,
        _src_id(rs),
        _src_id(rt) if rt is not None else NO_REG,
        program_target if taken else 0,
    )


def _make_cond_branch(test, uses_rt: bool):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        regs = machine.regs
        taken = test(regs[ins.rs], regs[ins.rt]) if uses_rt else test(regs[ins.rs])
        target = TEXT_BASE + WORD * ins.target
        if taken:
            machine._branch_target = target
        return _branch_record(pc, taken, target, ins.rs, ins.rt if uses_rt else 0)

    return run


_HANDLERS["beq"] = _make_cond_branch(lambda a, b: a == b, True)
_HANDLERS["bne"] = _make_cond_branch(lambda a, b: a != b, True)
_HANDLERS["blez"] = _make_cond_branch(lambda a: a <= 0, False)
_HANDLERS["bgtz"] = _make_cond_branch(lambda a: a > 0, False)
_HANDLERS["bltz"] = _make_cond_branch(lambda a: a < 0, False)
_HANDLERS["bgez"] = _make_cond_branch(lambda a: a >= 0, False)


@_handler("j")
def _j(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    target = TEXT_BASE + WORD * ins.target
    machine._branch_target = target
    return (pc, int(Kind.JUMP), NO_REG, NO_REG, NO_REG, target)


@_handler("jal")
def _jal(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    target = TEXT_BASE + WORD * ins.target
    _wr(machine, 31, pc + 2 * WORD)  # return past the delay slot
    machine._branch_target = target
    return (pc, int(Kind.JUMP), 31, NO_REG, NO_REG, target)


@_handler("jr")
def _jr(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    target = _u32(machine.regs[ins.rs])
    machine._branch_target = target
    return (pc, int(Kind.JUMP), NO_REG, _src_id(ins.rs), NO_REG, target)


@_handler("jalr")
def _jalr(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    target = _u32(machine.regs[ins.rs])
    _wr(machine, ins.rd, pc + 2 * WORD)
    machine._branch_target = target
    return (pc, int(Kind.JUMP), _dst_id(ins.rd), _src_id(ins.rs), NO_REG, target)


# -- floating point -----------------------------------------------------------------


def _fp_id(f: int) -> int:
    return FP_REG_BASE + f


def _make_fp_arith(kind: Kind, fn, unary: bool):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        fregs = machine.fregs
        if unary:
            result = fn(fregs[ins.fs])
            src2 = NO_REG
        else:
            result = fn(fregs[ins.fs], fregs[ins.ft])
            src2 = _fp_id(ins.ft)
        fregs[ins.fd] = result
        return (pc, int(kind), _fp_id(ins.fd), _fp_id(ins.fs), src2, 0)

    return run


def _safe_div(a: float, b: float) -> float:
    if b == 0.0:
        return float("inf") if a > 0 else float("-inf") if a < 0 else 0.0
    return a / b


def _safe_sqrt(a: float) -> float:
    return a**0.5 if a >= 0.0 else 0.0


for _suffix in (".s", ".d"):
    _HANDLERS["add" + _suffix] = _make_fp_arith(Kind.FP_ADD, lambda a, b: a + b, False)
    _HANDLERS["sub" + _suffix] = _make_fp_arith(Kind.FP_ADD, lambda a, b: a - b, False)
    _HANDLERS["abs" + _suffix] = _make_fp_arith(Kind.FP_ADD, abs, True)
    _HANDLERS["neg" + _suffix] = _make_fp_arith(Kind.FP_ADD, lambda a: -a, True)
    _HANDLERS["mul" + _suffix] = _make_fp_arith(Kind.FP_MUL, lambda a, b: a * b, False)
    _HANDLERS["div" + _suffix] = _make_fp_arith(Kind.FP_DIV, _safe_div, False)
    _HANDLERS["sqrt" + _suffix] = _make_fp_arith(Kind.FP_DIV, _safe_sqrt, True)
    _HANDLERS["mov" + _suffix] = _make_fp_arith(Kind.FP_CVT, lambda a: a, True)


def _make_fp_compare(test):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        machine.fp_cond = test(machine.fregs[ins.fs], machine.fregs[ins.ft])
        return (pc, int(Kind.FP_ADD), NO_REG, _fp_id(ins.fs), _fp_id(ins.ft), 0)

    return run


for _suffix in (".s", ".d"):
    _HANDLERS["c.eq" + _suffix] = _make_fp_compare(lambda a, b: a == b)
    _HANDLERS["c.lt" + _suffix] = _make_fp_compare(lambda a, b: a < b)
    _HANDLERS["c.le" + _suffix] = _make_fp_compare(lambda a, b: a <= b)


def _make_fp_convert(fn):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        machine.fregs[ins.fd] = fn(machine.fregs[ins.fs])
        return (pc, int(Kind.FP_CVT), _fp_id(ins.fd), _fp_id(ins.fs), NO_REG, 0)

    return run


for _name in ("cvt.d.s", "cvt.s.d"):
    _HANDLERS[_name] = _make_fp_convert(float)
for _name in ("cvt.d.w", "cvt.s.w"):
    _HANDLERS[_name] = _make_fp_convert(lambda raw: float(int(raw)))
for _name in ("cvt.w.s", "cvt.w.d"):
    _HANDLERS[_name] = _make_fp_convert(lambda value: float(int(value)))


def _make_fp_branch(wanted: bool):
    def run(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
        taken = machine.fp_cond is wanted
        target = TEXT_BASE + WORD * ins.target
        if taken:
            machine._branch_target = target
        return (pc, int(Kind.BRANCH), NO_REG, NO_REG, NO_REG, target if taken else 0)

    return run


_HANDLERS["bc1t"] = _make_fp_branch(True)
_HANDLERS["bc1f"] = _make_fp_branch(False)


@_handler("lwc1")
def _lwc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    address = _u32(machine.regs[ins.rs] + ins.imm)
    machine.fregs[ins.fd] = machine.memory.read_float(address)
    return (pc, int(Kind.FP_LOAD), _fp_id(ins.fd), _src_id(ins.rs), NO_REG, address)


@_handler("swc1")
def _swc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    address = _u32(machine.regs[ins.rs] + ins.imm)
    machine.memory.write_float(address, machine.fregs[ins.ft])
    return (pc, int(Kind.FP_STORE), NO_REG, _src_id(ins.rs), _fp_id(ins.ft), address)


@_handler("ldc1")
def _ldc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    address = _u32(machine.regs[ins.rs] + ins.imm)
    machine.fregs[ins.fd] = machine.memory.read_double(address)
    return (pc, int(Kind.FP_LOAD), _fp_id(ins.fd), _src_id(ins.rs), NO_REG, address)


@_handler("sdc1")
def _sdc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    address = _u32(machine.regs[ins.rs] + ins.imm)
    machine.memory.write_double(address, machine.fregs[ins.ft])
    return (pc, int(Kind.FP_STORE), NO_REG, _src_id(ins.rs), _fp_id(ins.ft), address)


@_handler("mtc1")
def _mtc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    machine.fregs[ins.fd] = float(machine.regs[ins.rt])
    return (pc, int(Kind.FP_MOVE), _fp_id(ins.fd), _src_id(ins.rt), NO_REG, 0)


@_handler("mfc1")
def _mfc1(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    _wr(machine, ins.rd, int(machine.fregs[ins.fs]))
    return (pc, int(Kind.FP_MOVE), _dst_id(ins.rd), _fp_id(ins.fs), NO_REG, 0)


# -- miscellaneous ---------------------------------------------------------------------


@_handler("nop")
def _nop(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    return (pc, int(Kind.NOP), NO_REG, NO_REG, NO_REG, 0)


@_handler("halt")
def _halt(machine: Machine, ins: Instruction, pc: int) -> TraceRecord:
    machine._halted = True
    return (pc, int(Kind.HALT), NO_REG, NO_REG, NO_REG, 0)


def run_program(
    program: Program,
    max_instructions: int = 5_000_000,
    collect_trace: bool = True,
) -> MachineResult:
    """Convenience wrapper: build a Machine, run it, return the result."""
    machine = Machine(program=program, collect_trace=collect_trace)
    return machine.run(max_instructions=max_instructions)
