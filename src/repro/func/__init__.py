"""Functional simulation: sparse memory, architectural machine, traces."""

from repro.func.machine import Machine, MachineResult, SimulationError, run_program
from repro.func.memory import SparseMemory
from repro.func.prepared import PreparedTrace, prepare_snapshot, prepare_trace
from repro.func.trace import (
    FP_REG_BASE,
    HI_REG,
    LO_REG,
    NO_REG,
    NUM_UNIFIED_REGS,
    TraceRecord,
    TraceStats,
    compute_stats,
    is_fp_kind,
    is_memory_kind,
    load_trace,
    load_trace_array,
    save_trace,
    save_trace_array,
)

__all__ = [
    "Machine",
    "MachineResult",
    "SimulationError",
    "run_program",
    "SparseMemory",
    "PreparedTrace",
    "prepare_snapshot",
    "prepare_trace",
    "FP_REG_BASE",
    "HI_REG",
    "LO_REG",
    "NO_REG",
    "NUM_UNIFIED_REGS",
    "TraceRecord",
    "TraceStats",
    "compute_stats",
    "is_fp_kind",
    "is_memory_kind",
    "load_trace",
    "load_trace_array",
    "save_trace",
    "save_trace_array",
]
