"""Columnar prepared traces: derive per-record facts once, sweep many configs.

Every paper result is a sweep — Figure 8 alone times dozens of machine
configurations over the *same* dynamic traces — yet the timing model used
to re-walk a Python list of 6-tuples and re-derive config-independent
facts (kind classes, cache-line indices) for every single configuration.
:class:`PreparedTrace` is the columnar fix:

* the six record fields held as numpy ``int64`` columns (one ``(n, 6)``
  array, possibly memory-mapped straight out of the trace cache),
* derived columns computed **once per trace**: memory/FP-dispatch kind
  masks, the branch-taken mask, and per-``line_shift`` I-line / D-line
  indices,
* the same columns materialized as plain Python lists the first time a
  timing run asks for them — the hot loop then iterates a ``zip`` of
  lists (fast C-level indexed access, no per-config tuple unpacking and
  no per-record ``frozenset`` membership tests).

Preparation is **semantics-preserving**: a :class:`PreparedTrace` behaves
like the ``list[TraceRecord]`` it was built from (``len``, indexing,
iteration, equality all yield the same records), and
:meth:`AuroraProcessor.run <repro.core.processor.AuroraProcessor.run>`
produces byte-identical :class:`~repro.core.stats.SimStats` on either
representation — ``tests/test_prepared.py`` asserts this over both
benchmark suites and CI byte-diffs whole experiment reports across the
two paths (see docs/MODELING.md and docs/PERFORMANCE.md).
"""

from __future__ import annotations

import collections.abc
import time
from typing import Iterator, Sequence

import numpy as np

from repro.func.trace import (
    TraceRecord,
    TraceStats,
    _CONTROL_KINDS,
    _FP_KINDS,
    _MEMORY_KINDS,
)
from repro.isa.instructions import Kind

_MEM_KIND_LIST = sorted(_MEMORY_KINDS)
#: Kinds the IPU hands to the decoupled FPU — identical to the trace
#: module's FP class (arithmetic + FP loads/stores/moves).
_FP_DISPATCH_KIND_LIST = sorted(_FP_KINDS)
_CONTROL_KIND_LIST = sorted(_CONTROL_KINDS)
_FP_MOVE = int(Kind.FP_MOVE)

#: Process-wide preparation accounting (mirrors trace_cache.snapshot()):
#: the experiment runner publishes the deltas as ``runner.*`` metrics.
_PREPARE_COUNT = 0
_PREPARE_SECONDS = 0.0


def prepare_snapshot() -> tuple[int, float]:
    """(traces prepared, wall seconds spent preparing) so far."""
    return (_PREPARE_COUNT, _PREPARE_SECONDS)


class PreparedTrace(collections.abc.Sequence):
    """One dynamic trace in columnar form (see module docstring).

    Construct through :func:`prepare_trace` (which records the
    ``trace_prepare`` span and the process-wide prepare gauges) rather
    than directly.  The backing array may be a read-only memory map from
    the trace cache; nothing here ever writes to it.
    """

    __slots__ = (
        "_array", "pc", "kind", "dst", "src1", "src2", "addr",
        "mem_mask", "fp_dispatch_mask", "branch_taken_mask",
        "_columns", "_flag_lists", "_line_lists",
        "prepare_seconds", "source", "validated", "__weakref__",
    )

    def __init__(
        self,
        array: np.ndarray,
        *,
        source: str = "records",
    ) -> None:
        if array.ndim != 2 or (array.size and array.shape[1] != 6):
            raise ValueError(
                f"prepared trace array must have shape (n, 6), "
                f"got {array.shape}"
            )
        if not np.issubdtype(array.dtype, np.integer):
            raise ValueError(
                f"prepared trace array dtype {array.dtype} is not integral"
            )
        self._array = array
        self.pc = array[:, 0]
        self.kind = array[:, 1]
        self.dst = array[:, 2]
        self.src1 = array[:, 3]
        self.src2 = array[:, 4]
        self.addr = array[:, 5]
        # Config-independent kind classes, derived once per trace.
        self.mem_mask = np.isin(self.kind, _MEM_KIND_LIST)
        self.fp_dispatch_mask = np.isin(self.kind, _FP_DISPATCH_KIND_LIST)
        self.branch_taken_mask = np.isin(self.kind, _CONTROL_KIND_LIST) & (
            self.addr != 0
        )
        #: Hot-loop lists, materialized lazily on first use (a report-only
        #: consumer of the columns never pays for them).
        self._columns: tuple[list, ...] | None = None
        self._flag_lists: tuple[list[bool], list[bool]] | None = None
        #: line_shift -> (iline list, dline list), memoized because the
        #: paper's models share one 32-byte line size.
        self._line_lists: dict[int, tuple[list[int], list[int]]] = {}
        self.prepare_seconds = 0.0
        self.source = source
        #: Set by validate_trace after a (vectorized, whole-trace)
        #: structural check, so a sweep validates each trace once
        #: instead of once per configuration.
        self.validated = False

    # ------------------------------------------------------ list protocol

    def __len__(self) -> int:
        return self._array.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                tuple(int(value) for value in row)
                for row in self._array[index]
            ]
        return tuple(int(value) for value in self._array[index])

    def __iter__(self) -> Iterator[TraceRecord]:
        columns = self._field_columns()
        return zip(*columns)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PreparedTrace):
            return np.array_equal(self._array, other._array)
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mirrors list
        raise TypeError("unhashable type: 'PreparedTrace'")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreparedTrace({len(self)} records, source={self.source!r})"
        )

    # ---------------------------------------------------------- columns

    @property
    def array(self) -> np.ndarray:
        """The backing ``(n, 6)`` int64 array (possibly memory-mapped)."""
        return self._array

    def to_records(self) -> list[TraceRecord]:
        """Materialize the plain ``list[TraceRecord]`` representation."""
        return [tuple(row) for row in self._array.tolist()]

    def _field_columns(self) -> tuple[list, ...]:
        """The six record fields plus kind-class flags, as Python lists."""
        if self._columns is None:
            self._columns = (
                self.pc.tolist(),
                self.kind.tolist(),
                self.dst.tolist(),
                self.src1.tolist(),
                self.src2.tolist(),
                self.addr.tolist(),
            )
        return self._columns

    def lines(self, line_shift: int) -> tuple[list[int], list[int]]:
        """(I-line, D-line) index lists for one cache-line shift."""
        cached = self._line_lists.get(line_shift)
        if cached is None:
            ilines = np.right_shift(self.pc, line_shift).tolist()
            dlines = np.right_shift(self.addr, line_shift).tolist()
            cached = (ilines, dlines)
            self._line_lists[line_shift] = cached
        return cached

    def rows(self, line_shift: int) -> Iterator[tuple]:
        """Hot-loop iterator: ``(pc, kind, dst, src1, src2, addr, is_mem,
        is_fp_dispatch, iline, dline)`` per record, all plain Python
        scalars out of precomputed lists."""
        pc, kind, dst, src1, src2, addr = self._field_columns()
        if self._flag_lists is None:
            self._flag_lists = (
                self.mem_mask.tolist(),
                self.fp_dispatch_mask.tolist(),
            )
        mem_flags, fp_dispatch_flags = self._flag_lists
        ilines, dlines = self.lines(line_shift)
        return zip(
            pc, kind, dst, src1, src2, addr,
            mem_flags, fp_dispatch_flags, ilines, dlines,
        )


def prepare_trace(
    trace: "Sequence[TraceRecord] | np.ndarray | PreparedTrace",
    *,
    workload: str | None = None,
    source: str = "records",
) -> PreparedTrace:
    """Build a :class:`PreparedTrace` (idempotent on prepared input).

    Records a ``trace_prepare`` span when host-side tracing is active and
    accumulates the process-wide prepare gauges either way.
    """
    global _PREPARE_COUNT, _PREPARE_SECONDS
    if isinstance(trace, PreparedTrace):
        return trace
    from repro.telemetry import tracing

    started = time.perf_counter()
    with tracing.span(
        "trace_prepare", "trace", workload=workload or "?", source=source
    ):
        if isinstance(trace, np.ndarray):
            array = trace
            if array.dtype != np.int64:
                array = array.astype(np.int64)
        else:
            array = np.asarray(trace, dtype=np.int64).reshape(len(trace), 6)
        prepared = PreparedTrace(array, source=source)
    elapsed = time.perf_counter() - started
    prepared.prepare_seconds = elapsed
    _PREPARE_COUNT += 1
    _PREPARE_SECONDS += elapsed
    return prepared


def compute_stats_prepared(
    trace: PreparedTrace, line_size: int = 32
) -> TraceStats:
    """Vectorized :func:`repro.func.trace.compute_stats` over the columns.

    Exactly equal to the record-loop implementation on the same trace —
    ``tests/test_prepared.py`` asserts the equivalence over both suites.
    """
    stats = TraceStats(line_size=line_size)
    shift = line_size.bit_length() - 1
    stats.total = len(trace)
    if not stats.total:
        return stats
    kinds, counts = np.unique(trace.kind, return_counts=True)
    stats.by_kind = {
        Kind(int(kind)): int(count) for kind, count in zip(kinds, counts)
    }
    stats.taken_branches = int(trace.branch_taken_mask.sum())
    stats.unique_code_lines = int(
        np.unique(np.right_shift(trace.pc, shift)).size
    )
    data_mask = trace.mem_mask & (trace.kind != _FP_MOVE)
    stats.unique_data_lines = int(
        np.unique(np.right_shift(trace.addr[data_mask], shift)).size
    )
    return stats
