"""Sparse byte-addressable memory for the functional simulator.

Memory is organised as fixed-size pages allocated on first touch, so a
program can scatter data across the 32-bit address space (text, static data,
heap, stack) without the simulator allocating 4 GiB.  All multi-byte
accesses are little-endian and must be naturally aligned, as on the R3000.
"""

from __future__ import annotations

import struct

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Raised on unaligned or otherwise illegal accesses."""


class SparseMemory:
    """Byte-addressable sparse memory with on-demand zero-filled pages."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        number = address >> PAGE_SHIFT
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    @property
    def resident_bytes(self) -> int:
        """Bytes of backing store currently allocated."""
        return len(self._pages) * PAGE_SIZE

    def load_initial(self, data: dict[int, int]) -> None:
        """Install a Program's initialised-data image (addr -> byte)."""
        for address, value in data.items():
            self._page(address)[address & PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------ raw bytes

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray(length)
        for i in range(length):
            a = address + i
            page = self._pages.get(a >> PAGE_SHIFT)
            out[i] = page[a & PAGE_MASK] if page is not None else 0
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            a = address + i
            self._page(a)[a & PAGE_MASK] = byte

    # ------------------------------------------------------------ integers

    def read_word(self, address: int) -> int:
        """Read a signed 32-bit word (naturally aligned)."""
        if address & 3:
            raise MemoryError_(f"unaligned word read at {address:#x}")
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        offset = address & PAGE_MASK
        return int.from_bytes(page[offset : offset + 4], "little", signed=True)

    def write_word(self, address: int, value: int) -> None:
        if address & 3:
            raise MemoryError_(f"unaligned word write at {address:#x}")
        page = self._page(address)
        offset = address & PAGE_MASK
        page[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_half(self, address: int, signed: bool = True) -> int:
        if address & 1:
            raise MemoryError_(f"unaligned halfword read at {address:#x}")
        raw = self.read_bytes(address, 2)
        return int.from_bytes(raw, "little", signed=signed)

    def write_half(self, address: int, value: int) -> None:
        if address & 1:
            raise MemoryError_(f"unaligned halfword write at {address:#x}")
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def read_byte(self, address: int, signed: bool = True) -> int:
        page = self._pages.get(address >> PAGE_SHIFT)
        value = page[address & PAGE_MASK] if page is not None else 0
        if signed and value >= 0x80:
            value -= 0x100
        return value

    def write_byte(self, address: int, value: int) -> None:
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------ floating

    def read_float(self, address: int) -> float:
        if address & 3:
            raise MemoryError_(f"unaligned float read at {address:#x}")
        return struct.unpack("<f", self.read_bytes(address, 4))[0]

    def write_float(self, address: int, value: float) -> None:
        if address & 3:
            raise MemoryError_(f"unaligned float write at {address:#x}")
        self.write_bytes(address, struct.pack("<f", value))

    def read_double(self, address: int) -> float:
        if address & 7:
            raise MemoryError_(f"unaligned double read at {address:#x}")
        return struct.unpack("<d", self.read_bytes(address, 8))[0]

    def write_double(self, address: int, value: float) -> None:
        if address & 7:
            raise MemoryError_(f"unaligned double write at {address:#x}")
        self.write_bytes(address, struct.pack("<d", value))
