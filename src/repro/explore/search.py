"""The frontier driver: estimate everything, simulate only what matters.

One round of the loop:

1. **Margin** — the model's trust radius: ``safety`` times the largest
   predicted-vs-simulated CPI residual observed so far (never below
   ``min_margin``).  Calibration points are fit almost exactly, so the
   first round runs at the floor and the margin widens as real
   residuals arrive.
2. **Band** — every un-simulated candidate whose *optimistic* point
   ``(cost, predicted_cpi - margin)`` is non-dominated against both the
   currently simulated points and every other un-simulated candidate's
   *pessimistic* point ``(cost, predicted_cpi + margin)``.  A
   pessimistic blocker only defers: either the blocker enters a band
   and its simulated CPI (within the margin) dominates at least as
   strongly, or the blocked point resurfaces in a later round.  If the
   model is right to within the margin, every true frontier point is
   in some round's band.
3. **Simulate** — the whole band in one grouped
   :func:`~repro.core.kernel.simulate_many` call (chunked across a
   process pool when ``jobs > 1``).

The loop ends when the band is empty (the simulated frontier is
stable), the round limit trips, or the simulation budget is exhausted
(reported, never silent).  Simulation is deterministic, so a tuned
(safety, min_margin) pair that recovers the exhaustive frontier keeps
recovering it — which is what lets CI assert exact recovery.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.core.kernel import simulate_many
from repro.core.stats import SimStats
from repro.cost.rbe import total_cost
from repro.explore.model import CPIEstimator, ModelError, ModelReport
from repro.explore.pareto import dominates, frontier_indices
from repro.explore.space import Candidate
from repro.experiments.common import format_table
from repro.telemetry import tracing

#: Margin floor (absolute CPI): below this the model would claim more
#: precision than one calibration can justify.
DEFAULT_MIN_MARGIN = 0.05
#: Multiplier on the worst observed residual when widening the margin.
DEFAULT_SAFETY = 1.5
#: Refinement-round limit — a backstop, not a tuning knob; the band
#: normally drains in two or three rounds.
DEFAULT_MAX_ROUNDS = 8
#: Fraction of the space the explorer may simulate (calibration runs
#: included) before it stops and reports budget exhaustion.
DEFAULT_BUDGET = 0.5


class ExploreError(ValueError):
    """The exploration cannot run as requested."""


@dataclass
class ExplorePoint:
    """One candidate's state at the end of an exploration."""

    label: str
    config: MachineConfig
    cost: float
    predicted_cpi: float
    marker: str = ""
    simulated_cpi: float | None = None
    #: True when the point was simulated and retired zero instructions.
    empty: bool = False

    @property
    def simulated(self) -> bool:
        return self.simulated_cpi is not None or self.empty


@dataclass
class ExploreResult:
    """Everything a guided exploration learned about its space."""

    workload: str
    factor: float
    kernel: str
    points: list[ExplorePoint] = field(default_factory=list)
    rounds: int = 0
    calibration_runs: int = 0
    configs_considered: int = 0
    #: Unique configs simulated end to end — calibration probes
    #: included, whether or not they are space members.
    configs_simulated: int = 0
    budget: float = DEFAULT_BUDGET
    budget_exhausted: bool = False
    margin: float = 0.0
    model: ModelReport = field(
        default_factory=lambda: ModelReport(0, 0.0, 0.0, 1.0)
    )
    #: Simulated-cycle / retired-instruction totals over every
    #: simulation the exploration ran (the perf-series numerators).
    sim_cycles: int = 0
    sim_instructions: int = 0

    @property
    def simulated_fraction(self) -> float:
        if not self.configs_considered:
            return 0.0
        return self.configs_simulated / self.configs_considered

    def frontier(self) -> list[ExplorePoint]:
        """Non-dominated set over the *simulated* points, cheapest first.

        Prediction never decides the frontier — only which points earn a
        simulation; every frontier claim is backed by a simulated CPI.
        """
        live = [
            p for p in self.points if p.simulated_cpi is not None
        ]
        chosen = frontier_indices(
            [(p.cost, p.simulated_cpi) for p in live]
        )
        return sorted((live[i] for i in chosen), key=lambda p: p.cost)

    def frontier_labels(self) -> list[str]:
        return [p.label for p in self.frontier()]

    def render(self) -> str:
        on_frontier = {id(p) for p in self.frontier()}
        rows = []
        for p in sorted(self.points, key=lambda p: p.cost):
            if p.empty:
                simulated = "(empty)"
            elif p.simulated_cpi is not None:
                simulated = f"{p.simulated_cpi:.3f}"
            else:
                simulated = "-"
            rows.append(
                [
                    p.label,
                    f"{p.cost:,.0f}",
                    f"{p.predicted_cpi:.3f}",
                    simulated,
                    p.marker,
                    "*" if id(p) in on_frontier else "",
                ]
            )
        table = format_table(
            ["configuration", "cost (RBE)", "pred CPI", "sim CPI",
             "mark", "frontier"],
            rows,
            title=(
                f"Guided exploration: {self.workload} "
                f"(factor {self.factor:g}, {self.kernel} kernel)"
            ),
        )
        lines = [
            table,
            "",
            f"simulated {self.configs_simulated} of "
            f"{self.configs_considered} configs "
            f"({self.simulated_fraction * 100:.0f}%; "
            f"{self.calibration_runs} calibration runs, "
            f"{self.rounds} refinement rounds, "
            f"margin {self.margin:.3f} CPI)",
            self.model.render(),
        ]
        if self.budget_exhausted:
            lines.append(
                f"WARNING: simulation budget ({self.budget * 100:.0f}% of "
                "the space) exhausted before the frontier stabilised — "
                "the frontier above may be incomplete"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready summary (``aurora-sim explore --out``)."""
        return {
            "workload": self.workload,
            "factor": self.factor,
            "kernel": self.kernel,
            "rounds": self.rounds,
            "calibration_runs": self.calibration_runs,
            "configs_considered": self.configs_considered,
            "configs_simulated": self.configs_simulated,
            "simulated_fraction": self.simulated_fraction,
            "budget": self.budget,
            "budget_exhausted": self.budget_exhausted,
            "margin": self.margin,
            "model": {
                "count": self.model.count,
                "mean_rel_error": self.model.mean_rel_error,
                "max_rel_error": self.model.max_rel_error,
                "rank_correlation": self.model.rank_corr,
            },
            "frontier": self.frontier_labels(),
            "points": [
                {
                    "label": p.label,
                    "cost": p.cost,
                    "predicted_cpi": p.predicted_cpi,
                    "simulated_cpi": p.simulated_cpi,
                    "marker": p.marker,
                    "empty": p.empty,
                }
                for p in self.points
            ],
        }


def _simulate_configs_chunk(
    workload: str, factor: float, configs: list[MachineConfig], kernel
) -> list[SimStats]:
    """Process-pool worker: rebuild the trace (on-disk cache) and run."""
    from repro.experiments.common import scaled_trace

    trace = scaled_trace(workload, factor)
    return [
        r.stats for r in simulate_many(trace, configs, kernel=kernel)
    ]


def _run_band(
    trace,
    configs: list[MachineConfig],
    *,
    kernel,
    jobs: int,
    workload: str,
    factor: float,
) -> list[SimStats]:
    """One grouped simulation of a round's band, optionally chunked."""
    if jobs <= 1 or len(configs) < 2:
        return [
            r.stats for r in simulate_many(trace, configs, kernel=kernel)
        ]
    chunk = (len(configs) + jobs - 1) // jobs
    chunks = [
        configs[i : i + chunk] for i in range(0, len(configs), chunk)
    ]
    stats: list[SimStats] = []
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=len(chunks)
    ) as pool:
        for part in pool.map(
            _simulate_configs_chunk,
            [workload] * len(chunks),
            [factor] * len(chunks),
            chunks,
            [kernel] * len(chunks),
        ):
            stats.extend(part)
    return stats


def explore(
    candidates: list[Candidate],
    trace,
    *,
    workload: str = "espresso",
    factor: float = 1.0,
    budget: float = DEFAULT_BUDGET,
    safety: float = DEFAULT_SAFETY,
    min_margin: float = DEFAULT_MIN_MARGIN,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    kernel: str | None = None,
    jobs: int = 1,
    metrics=None,
) -> ExploreResult:
    """Model-guided Pareto exploration of ``candidates`` on one trace.

    ``budget`` bounds *all* simulation (calibration included) as a
    fraction of the space size; ``metrics`` (a
    :class:`~repro.telemetry.metrics.MetricsRegistry`) receives the
    ``explore.*`` instrument family when given.  Raises
    :class:`ExploreError` on an empty space, a budget too small to
    calibrate in, or a space the estimator cannot score.
    """
    if not candidates:
        raise ExploreError("cannot explore an empty candidate space")
    if not 0 < budget <= 1:
        raise ExploreError(f"budget must be in (0, 1], got {budget!r}")

    with tracing.span(
        "explore", "explore", configs=len(candidates), workload=workload
    ):
        estimator = CPIEstimator.calibrate(trace, kernel=kernel)
        simulated: dict[MachineConfig, SimStats] = dict(
            estimator.calibration_stats
        )
        max_sims = int(budget * len(candidates))
        if len(simulated) > max_sims:
            raise ExploreError(
                f"budget {budget:g} allows {max_sims} simulations but "
                f"calibration alone needs {len(simulated)}; raise the "
                "budget or explore a larger space"
            )

        try:
            points = [
                ExplorePoint(
                    label=c.label,
                    config=c.config,
                    cost=total_cost(c.config),
                    predicted_cpi=estimator.predict(c.config),
                    marker=c.marker,
                )
                for c in candidates
            ]
        except ModelError as error:
            raise ExploreError(
                f"the estimator cannot score this space: {error}"
            ) from None

        def residual_margin() -> float:
            worst = 0.0
            for config, stats in simulated.items():
                if not stats.instructions:
                    continue
                try:
                    predicted = estimator.predict(config)
                except ModelError:
                    continue  # out-of-family calibration probe
                worst = max(worst, abs(predicted - stats.cpi))
            return max(min_margin, safety * worst)

        def apply_stats(point: ExplorePoint, stats: SimStats) -> None:
            if stats.instructions:
                point.simulated_cpi = stats.cpi
            else:
                point.empty = True

        for point in points:
            stats = simulated.get(point.config)
            if stats is not None:
                apply_stats(point, stats)

        rounds = 0
        margin = residual_margin()
        budget_exhausted = False
        for _ in range(max_rounds):
            anchored = [
                (p.cost, p.simulated_cpi)
                for p in points
                if p.simulated_cpi is not None
            ]
            unsimulated = [p for p in points if not p.simulated]
            band = []
            for p in unsimulated:
                optimistic = (p.cost, p.predicted_cpi - margin)
                if any(dominates(s, optimistic) for s in anchored):
                    continue
                # Pessimistic blocking: another candidate would dominate
                # this one even if its own prediction is off by the full
                # margin.  This defers, never drops — see module docs.
                if any(
                    o is not p
                    and dominates(
                        (o.cost, o.predicted_cpi + margin), optimistic
                    )
                    for o in unsimulated
                ):
                    continue
                band.append(p)
            if not band:
                break
            headroom = max_sims - len(simulated)
            if headroom <= 0:
                budget_exhausted = True
                break
            if len(band) > headroom:
                # Spend what remains on the most promising optimists.
                band.sort(key=lambda p: (p.predicted_cpi, p.cost))
                band = band[:headroom]
                budget_exhausted = True
            rounds += 1
            with tracing.span(
                "explore_round", "explore", round=rounds, band=len(band)
            ):
                stats_list = _run_band(
                    trace,
                    [p.config for p in band],
                    kernel=kernel,
                    jobs=jobs,
                    workload=workload,
                    factor=factor,
                )
            for point, stats in zip(band, stats_list):
                simulated[point.config] = stats
                apply_stats(point, stats)
            margin = residual_margin()
            if budget_exhausted:
                break

        from repro.core.kernel import get_kernel

        model = estimator.validate(
            [
                (p.config, simulated[p.config])
                for p in points
                if p.config in simulated
            ]
        )
        result = ExploreResult(
            workload=workload,
            factor=factor,
            kernel=get_kernel(kernel).name,
            points=points,
            rounds=rounds,
            calibration_runs=estimator.calibration_count,
            configs_considered=len(candidates),
            configs_simulated=len(simulated),
            budget=budget,
            budget_exhausted=budget_exhausted,
            margin=margin,
            model=model,
            sim_cycles=sum(s.cycles for s in simulated.values()),
            sim_instructions=sum(
                s.instructions for s in simulated.values()
            ),
        )
        if metrics is not None:
            _publish(result, metrics)
        return result


def _publish(result: ExploreResult, metrics) -> None:
    """Feed the ``explore.*`` instrument family of a MetricsRegistry."""
    metrics.counter("explore.configs_considered").inc(
        result.configs_considered
    )
    metrics.counter("explore.configs_simulated").inc(
        result.configs_simulated
    )
    metrics.counter("explore.calibration_runs").inc(result.calibration_runs)
    metrics.counter("explore.rounds").inc(result.rounds)
    metrics.gauge("explore.simulated_fraction").set(
        result.simulated_fraction
    )
    metrics.gauge("explore.margin_cpi").set(result.margin)
    metrics.gauge("explore.model_mean_rel_error").set(
        result.model.mean_rel_error
    )
    metrics.gauge("explore.model_max_rel_error").set(
        result.model.max_rel_error
    )
    metrics.gauge("explore.model_rank_correlation").set(
        result.model.rank_corr
    )
