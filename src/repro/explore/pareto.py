"""Cost/CPI dominance and the non-dominated (Pareto) frontier.

Both axes are minimised: a point dominates another when it is no worse
on both cost and CPI and strictly better on at least one.  Ties are
kept — two configs landing on the exact same (cost, CPI) point are both
non-dominated — because deterministic simulation really does produce
equal CPIs for configs whose differing resource is never exercised.
"""

from __future__ import annotations

from typing import Sequence

#: Slack for float comparisons: RBE totals are sums of exact table
#: entries and CPIs are ratios of exact integers, so anything closer
#: than this is the same point, not a dominance relation.
EPSILON = 1e-9


def dominates(
    a: tuple[float, float], b: tuple[float, float], *, epsilon: float = EPSILON
) -> bool:
    """True when point ``a`` strictly dominates ``b`` (minimising both).

    Points are ``(cost, cpi)`` pairs.  Equal points never dominate each
    other.
    """
    a_cost, a_cpi = a
    b_cost, b_cpi = b
    if a_cost > b_cost + epsilon or a_cpi > b_cpi + epsilon:
        return False
    return a_cost < b_cost - epsilon or a_cpi < b_cpi - epsilon


def frontier_indices(
    points: Sequence[tuple[float, float]], *, epsilon: float = EPSILON
) -> list[int]:
    """Indices of the non-dominated ``(cost, cpi)`` points, in input order.

    O(n^2) pairwise sweep — the spaces this repo ranks are tens of
    points, and the quadratic form keeps the tie semantics obvious.
    """
    return [
        i
        for i, candidate in enumerate(points)
        if not any(
            dominates(other, candidate, epsilon=epsilon)
            for j, other in enumerate(points)
            if j != i
        )
    ]
