"""The analytic CPI estimator: score any machine point without simulating.

The queuing-model idea (Carroll & Lin, PAPERS.md): a config's CPI is a
base issue rate plus per-cause stall components, and each resource
axis — MSHRs, reorder buffer, write cache, prefetching, issue width,
memory latency — moves those components in ways a handful of anchor
simulations can calibrate:

* **Family anchors** — one simulated ``std`` dual-issue point per
  I-cache family (the Table 1 models at 17-cycle latency), run with
  telemetry on so its stall breakdown *and* structure-occupancy
  histograms (:func:`repro.telemetry.analysis.occupancy_summaries`) are
  known.  A family anchor contributes the starting per-kind stall
  decomposition for every candidate in its family.
* **Axis response curves** — the calibration family (baseline/2K) is
  probed at every swept value of each axis in one grouped
  ``simulate_many``.  The per-kind CPI difference between two axis
  values is the *response*; predicting a candidate adds the response
  between its family's std value and its own value.
* **Demand scaling** — families stress their memory structures
  differently (a 16 KB D-cache misses more than a 64 KB one).  The
  write-cache response transfers scaled by the ratio of the families'
  time-weighted occupancy *utilizations* (mean occupancy over capacity,
  from the anchors' histograms); the MSHR response transfers unscaled,
  because the measured absolute stall response is family-invariant and
  mean MSHR occupancy counts latency-hiding overlap, not queuing delay
  (see :meth:`CPIEstimator._demand_scale`).
* **Latency slope** — one probe of the calibration config at 21-cycle
  memory gives a per-kind multiplicative slope, interpolated linearly
  in latency.
* **Issue width** — the small/single point calibrates the dual→single
  delta; the base-CPI part scales with the family's measured
  dual-issue pair rate, and pairing stalls vanish by construction.

Everything is per-instruction and additive per stall kind, clamped at
zero.  docs/EXPLORATION.md discusses the assumptions and when they are
unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BASELINE, LARGE, SMALL, MachineConfig
from repro.core.kernel import simulate_many
from repro.core.processor import simulate_trace
from repro.core.stats import SimStats, StallKind
from repro.telemetry import tracing
from repro.telemetry.analysis import occupancy_summaries
from repro.telemetry.events import EventBus, RingBufferSink

#: The decomposition key for non-stall (issue/execute) cycles.
BASE = "base"

#: Demand-scale clamp: occupancy-ratio transfers outside this range say
#: the families are too dissimilar for a linear transfer to be credible.
_SCALE_RANGE = (0.25, 4.0)

#: Components below this (CPI) are treated as zero when forming ratios.
_TINY = 1e-12


class ModelError(ValueError):
    """The estimator cannot calibrate or score the requested point."""


Decomp = dict  # {BASE | StallKind: cycles-per-instruction}


def _decompose(stats: SimStats) -> Decomp:
    """Split a run's CPI into base + per-kind stall components."""
    if not stats.instructions:
        raise ModelError(
            "cannot decompose an empty run (zero instructions retired); "
            "calibrate with a larger trace factor"
        )
    per_instr = {
        kind: stats.stall_cycles[kind] / stats.instructions
        for kind in StallKind
    }
    base = stats.cpi - sum(per_instr.values())
    return {BASE: max(base, 0.0), **per_instr}


def _total(decomp: Decomp) -> float:
    return sum(max(v, 0.0) for v in decomp.values())


def _interpolate(curve: dict[int, Decomp], value: int) -> Decomp:
    """Piecewise-linear per-component read of an axis response curve.

    Exact at probed values; linear between neighbours; clamped to the
    nearest probe outside the calibrated range (extrapolating a queue
    response beyond its probes is how estimators lie).
    """
    if value in curve:
        return curve[value]
    probed = sorted(curve)
    if value <= probed[0]:
        return curve[probed[0]]
    if value >= probed[-1]:
        return curve[probed[-1]]
    for lo, hi in zip(probed, probed[1:]):
        if lo < value < hi:
            t = (value - lo) / (hi - lo)
            return {
                key: curve[lo][key] + t * (curve[hi][key] - curve[lo][key])
                for key in curve[lo]
            }
    raise AssertionError("unreachable")  # pragma: no cover


def rank_correlation(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (average ranks on ties).

    1.0 means the model orders configs exactly as simulation does —
    for pruning, ordering fidelity matters as much as absolute error.
    """
    if len(xs) != len(ys):
        raise ValueError("rank_correlation needs equal-length sequences")
    n = len(xs)
    if n < 2:
        return 1.0

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            mean_rank = (i + j) / 2.0
            for k in range(i, j + 1):
                out[order[k]] = mean_rank
            i = j + 1
        return out

    rx, ry = ranks(list(xs)), ranks(list(ys))
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx <= 0 or vy <= 0:
        return 1.0 if vx == vy else 0.0
    return cov / (vx * vy) ** 0.5


@dataclass(frozen=True)
class ModelReport:
    """Predicted-vs-simulated error statistics over a set of configs."""

    count: int
    mean_rel_error: float
    max_rel_error: float
    rank_corr: float

    @classmethod
    def from_pairs(cls, pairs: "list[tuple[float, float]]") -> "ModelReport":
        """Build from ``(predicted_cpi, simulated_cpi)`` pairs."""
        live = [(p, s) for p, s in pairs if s > 0]
        if not live:
            return cls(0, 0.0, 0.0, 1.0)
        errors = [abs(p - s) / s for p, s in live]
        return cls(
            count=len(live),
            mean_rel_error=sum(errors) / len(errors),
            max_rel_error=max(errors),
            rank_corr=rank_correlation(
                [p for p, _ in live], [s for _, s in live]
            ),
        )

    def render(self) -> str:
        return (
            f"model error over {self.count} simulated configs: "
            f"mean {self.mean_rel_error * 100:.1f}%, "
            f"max {self.max_rel_error * 100:.1f}%, "
            f"rank correlation {self.rank_corr:.3f}"
        )


@dataclass(frozen=True)
class _Anchor:
    """One telemetry-on family anchor and its calibration inputs."""

    config: MachineConfig
    stats: SimStats
    decomp: Decomp
    mshr_utilization: float
    writecache_utilization: float
    prefetch_coverage: float  # (i+d) prefetch hits per instruction
    pair_rate: float  # dual-issued pairs per instruction


#: (axis name, MachineConfig field, swept values).  The probe values are
#: exactly the Figure 8 sweep's, so grid candidates read the curves with
#: zero interpolation error.
_AXES = (
    ("mshr", "mshr_entries", (1, 2, 4)),
    ("rob", "rob_entries", (2, 6, 8)),
    ("wc", "writecache_lines", (2, 4, 8)),
)

#: The calibration family: the baseline model is the middle of the
#: design space, so its responses transfer the shortest distance.
_CALIBRATION_MODEL = BASELINE
_ANCHOR_MODELS = {1024: SMALL, 2048: BASELINE, 4096: LARGE}
_ANCHOR_LATENCY = 17
_LATENCY_PROBE = 21


@dataclass
class CPIEstimator:
    """Calibrated per-workload CPI predictor over machine configs."""

    anchors: dict[int, _Anchor]
    curves: dict[str, dict[int, Decomp]]
    nopf_decomp: Decomp
    single_decomp: Decomp
    latency_decomp: Decomp
    #: Every simulation spent on calibration, keyed by config — the
    #: search reuses these instead of re-simulating grid members.
    calibration_stats: dict[MachineConfig, SimStats] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------ calibrate

    @classmethod
    def calibrate(cls, trace, *, kernel: str | None = None) -> "CPIEstimator":
        """Run the anchor + probe simulations and fit the model.

        Three scalar telemetry runs (one ``std`` dual point per I-cache
        family; the batched kernel refuses telemetry by design) plus one
        grouped ``simulate_many`` of nine probes: the calibration
        family's axis sweeps, its no-prefetch and 21-cycle-latency
        variants, and the small/single issue-width anchor.  Twelve
        simulations total, all of them members of the Figure 8 grid.
        """
        calibration_stats: dict[MachineConfig, SimStats] = {}
        anchors: dict[int, _Anchor] = {}
        with tracing.span(
            "explore_calibrate", "explore", anchors=len(_ANCHOR_MODELS)
        ):
            for icache, model in sorted(_ANCHOR_MODELS.items()):
                config = model.dual_issue().with_latency(_ANCHOR_LATENCY)
                bus = EventBus()
                ring = RingBufferSink(capacity=None)
                bus.attach(ring)
                try:
                    stats = simulate_trace(trace, config, telemetry=bus).stats
                finally:
                    bus.close()
                anchors[icache] = cls._build_anchor(config, stats, ring.events)
                calibration_stats[config] = stats

            calib = _CALIBRATION_MODEL.dual_issue().with_latency(
                _ANCHOR_LATENCY
            )
            probes: list[MachineConfig] = []
            for _, fld, values in _AXES:
                probes.extend(
                    calib.with_(**{fld: v})
                    for v in values
                    if v != getattr(calib, fld)
                )
            probes.append(calib.without_prefetch())
            probes.append(calib.with_latency(_LATENCY_PROBE))
            probes.append(
                SMALL.single_issue().with_latency(_ANCHOR_LATENCY)
            )
            for config, result in zip(
                probes, simulate_many(trace, probes, kernel=kernel)
            ):
                calibration_stats[config] = result.stats

        calib_decomp = anchors[2048].decomp
        curves: dict[str, dict[int, Decomp]] = {}
        for axis, fld, values in _AXES:
            curve: dict[int, Decomp] = {}
            for v in values:
                config = calib.with_(**{fld: v})
                if v == getattr(calib, fld):
                    curve[v] = calib_decomp
                else:
                    curve[v] = _decompose(calibration_stats[config])
            curves[axis] = curve
        return cls(
            anchors=anchors,
            curves=curves,
            nopf_decomp=_decompose(
                calibration_stats[calib.without_prefetch()]
            ),
            single_decomp=_decompose(
                calibration_stats[
                    SMALL.single_issue().with_latency(_ANCHOR_LATENCY)
                ]
            ),
            latency_decomp=_decompose(
                calibration_stats[calib.with_latency(_LATENCY_PROBE)]
            ),
            calibration_stats=calibration_stats,
        )

    @staticmethod
    def _build_anchor(
        config: MachineConfig, stats: SimStats, events
    ) -> _Anchor:
        occupancy = occupancy_summaries(events)
        instructions = stats.instructions or 1
        return _Anchor(
            config=config,
            stats=stats,
            decomp=_decompose(stats),
            mshr_utilization=(
                occupancy["mshr"].time_weighted_mean / config.mshr_entries
            ),
            writecache_utilization=(
                occupancy["writecache"].time_weighted_mean
                / config.writecache_lines
            ),
            prefetch_coverage=(
                (stats.iprefetch_hits + stats.dprefetch_hits) / instructions
            ),
            pair_rate=stats.dual_issued_pairs / instructions,
        )

    # -------------------------------------------------------------- predict

    @property
    def calibration_count(self) -> int:
        return len(self.calibration_stats)

    def _demand_scale(self, axis: str, anchor: _Anchor) -> float:
        """How much harder this family drives the axis's structure than
        the calibration family does (occupancy-utilization ratio).

        Only the write-cache axis is scaled.  MSHR responses transfer
        *unscaled*: the measured per-kind stall response to MSHR sizing
        is family-invariant in absolute terms (the load/store stall-CPI
        drop from 1 to 4 MSHRs agrees across all three cache families
        to within 0.001 CPI on the anchor workloads), while mean MSHR
        occupancy mostly counts overlapped — latency-hiding — residency
        rather than queuing delay, so an occupancy ratio overstates the
        transfer by the families' miss-rate ratio.  The anchors'
        occupancy histograms still feed the write-cache scale below and
        the report's per-structure summaries.
        """
        calib = self.anchors[2048]
        if axis == "wc":
            mine, theirs = (
                anchor.writecache_utilization,
                calib.writecache_utilization,
            )
        else:  # mshr: absolute transfer; rob: no occupancy probe exists
            return 1.0
        if mine <= _TINY or theirs <= _TINY:
            return 1.0
        lo, hi = _SCALE_RANGE
        return min(max(mine / theirs, lo), hi)

    def predict_decomp(self, config: MachineConfig) -> Decomp:
        """Predicted per-instruction cycle decomposition for ``config``."""
        anchor = self.anchors.get(config.icache_bytes)
        if anchor is None:
            raise ModelError(
                f"no family anchor for icache_bytes={config.icache_bytes}; "
                "calibrated families: "
                + ", ".join(str(k) for k in sorted(self.anchors))
            )
        decomp = dict(anchor.decomp)
        calib_decomp = self.anchors[2048].decomp

        for axis, fld, _values in _AXES:
            v_from = getattr(anchor.config, fld)
            v_to = getattr(config, fld)
            if v_from == v_to:
                continue
            scale = self._demand_scale(axis, anchor)
            hi = _interpolate(self.curves[axis], v_to)
            lo = _interpolate(self.curves[axis], v_from)
            for key in decomp:
                decomp[key] += scale * (hi[key] - lo[key])

        if config.prefetch_enabled != anchor.config.prefetch_enabled:
            calib = self.anchors[2048]
            scale = 1.0
            if calib.prefetch_coverage > _TINY:
                lo_s, hi_s = _SCALE_RANGE
                scale = min(
                    max(
                        anchor.prefetch_coverage / calib.prefetch_coverage,
                        lo_s,
                    ),
                    hi_s,
                )
            for key in decomp:
                decomp[key] += scale * (
                    self.nopf_decomp[key] - calib_decomp[key]
                )

        if config.issue_width != anchor.config.issue_width:
            small_anchor = self.anchors[1024]
            gamma = 1.0
            if small_anchor.pair_rate > _TINY:
                gamma = anchor.pair_rate / small_anchor.pair_rate
            for key in decomp:
                delta = self.single_decomp[key] - small_anchor.decomp[key]
                if key == BASE:
                    decomp[key] += gamma * delta
                elif key is StallKind.PAIRING:
                    decomp[key] = 0.0  # single issue cannot pair-stall
                else:
                    decomp[key] += delta

        latency = config.mem_latency
        if latency != _ANCHOR_LATENCY:
            span = _LATENCY_PROBE - _ANCHOR_LATENCY
            for key in decomp:
                base_value = calib_decomp[key]
                if base_value <= _TINY:
                    continue
                kappa = self.latency_decomp[key] / base_value
                factor = 1.0 + (kappa - 1.0) * (
                    (latency - _ANCHOR_LATENCY) / span
                )
                decomp[key] *= max(factor, 0.0)

        return {key: max(value, 0.0) for key, value in decomp.items()}

    def predict(self, config: MachineConfig) -> float:
        """Predicted CPI for ``config`` — no simulation."""
        return _total(self.predict_decomp(config))

    def validate(
        self, observations: "list[tuple[MachineConfig, SimStats]]"
    ) -> ModelReport:
        """Error statistics of the model against simulated ground truth."""
        pairs = [
            (self.predict(config), stats.cpi)
            for config, stats in observations
            if stats.instructions
        ]
        return ModelReport.from_pairs(pairs)
