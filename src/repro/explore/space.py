"""Named candidate spaces for the guided explorer.

A space is a list of :class:`Candidate` points — labelled
:class:`~repro.core.config.MachineConfig` machine points, optionally
carrying the paper's A–E markers.  The registry keeps CLI space specs
(``aurora-sim explore --space fig8``) decoupled from how each space is
enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig


class SpaceError(ValueError):
    """An unknown space name or an unenumerable space."""


@dataclass(frozen=True)
class Candidate:
    """One labelled point of a design space."""

    label: str
    config: MachineConfig
    marker: str = ""  # the paper's A-E annotations, where applicable


def fig8_space(latencies: tuple[int, ...] = (17, 21)) -> list[Candidate]:
    """The paper's Figure 8 grid: the 29-point catalogue per latency.

    At the default latencies this is the full 58-config sweep the paper
    ran (Section 5.9 re-examines the space at 21-cycle memory): every
    catalogue point at 17 cycles, plus a ``label@L21`` twin.  Markers
    ride only on the 17-cycle points — that is the figure they annotate.
    """
    from repro.experiments.fig8_design_space import design_points

    candidates: list[Candidate] = []
    for latency in latencies:
        for label, config, marker in design_points():
            if latency == 17:
                candidates.append(Candidate(label, config, marker))
            else:
                candidates.append(
                    Candidate(
                        f"{label}@L{latency}",
                        config.with_latency(latency),
                    )
                )
    return candidates


_SPACES = {
    "fig8": lambda: fig8_space(),
    "fig8-L17": lambda: fig8_space(latencies=(17,)),
}


def space_names() -> tuple[str, ...]:
    return tuple(sorted(_SPACES))


def get_space(name: str) -> list[Candidate]:
    """Enumerate a named space; raises :class:`SpaceError` when unknown."""
    try:
        builder = _SPACES[name]
    except KeyError:
        raise SpaceError(
            f"unknown space {name!r}; expected one of "
            + ", ".join(space_names())
        ) from None
    candidates = builder()
    labels = [c.label for c in candidates]
    if len(set(labels)) != len(labels):
        raise SpaceError(f"space {name!r} has duplicate labels")
    return candidates
