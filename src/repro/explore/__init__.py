"""Model-guided design-space exploration (docs/EXPLORATION.md).

Figure 8 of the paper is an exhaustive sweep; this package is how the
repo explores spaces the paper could never enumerate:

* :mod:`repro.explore.pareto` — strict cost/CPI dominance and the
  non-dominated frontier, shared with the Figure 8 driver.
* :mod:`repro.explore.space` — named candidate spaces (``fig8`` is the
  paper's 58-config grid: the Figure 8 catalogue at 17-cycle memory
  latency plus its 21-cycle twins).
* :mod:`repro.explore.model` — the analytic CPI estimator: a per-kind
  stall decomposition calibrated from a handful of anchor simulations
  plus the occupancy histograms and stall breakdowns of
  :mod:`repro.telemetry.analysis`.
* :mod:`repro.explore.search` — the frontier driver: rank every
  candidate by (predicted CPI, RBE cost), simulate only the predicted
  frontier band plus an uncertainty margin, one grouped
  ``simulate_many`` per refinement round, until the simulated frontier
  is stable.
"""

from repro.explore.model import (  # noqa: F401
    CPIEstimator,
    ModelError,
    ModelReport,
    rank_correlation,
)
from repro.explore.pareto import (  # noqa: F401
    dominates,
    frontier_indices,
)
from repro.explore.search import (  # noqa: F401
    ExploreError,
    ExplorePoint,
    ExploreResult,
    explore,
)
from repro.explore.space import (  # noqa: F401
    Candidate,
    fig8_space,
    get_space,
    space_names,
)
