"""Ablation: precise FP exceptions (paper Section 3.1's dual-mode idea).

The decoupled FPU makes exceptions imprecise; the paper sketches a
conservative mode where instructions are held until they cannot fault.
This ablation holds each FP instruction's IPU reorder-buffer entry until
the FPU completes it — quantifying what decoupling buys.
"""

from repro.core.config import BASELINE
from repro.experiments.common import suite_stats


def run_ablation(factor):
    imprecise = suite_stats(BASELINE.dual_issue(), "fp", factor)
    precise = suite_stats(
        BASELINE.dual_issue().with_(fpu_precise_exceptions=True), "fp", factor
    )
    return {
        name: (imprecise[name].cpi, precise[name].cpi) for name in imprecise
    }


def test_ablation_fp_precise_exceptions(benchmark, factor):
    rows = benchmark.pedantic(
        lambda: run_ablation(factor), rounds=1, iterations=1
    )
    print()
    print("Ablation: precise FP exceptions (baseline model CPI)")
    print(f"{'benchmark':<10} {'imprecise':>10} {'precise':>9} {'cost':>8}")
    total_im = total_pr = 0.0
    for name, (imprecise, precise) in rows.items():
        total_im += imprecise
        total_pr += precise
        print(f"{name:<10} {imprecise:>10.3f} {precise:>9.3f} "
              f"{(precise / imprecise - 1):>+8.1%}")
    print(f"{'Average':<10} {total_im / len(rows):>10.3f} "
          f"{total_pr / len(rows):>9.3f}")
    for imprecise, precise in rows.values():
        assert precise >= imprecise * 0.999  # precision can only cost
