"""Telemetry overhead gate: probes-off must stay within 5% of no-probes.

The instrumented simulator cannot be compared against its own pre-probe
source (that code is gone once the probes land), so the gate is
operationalised as four in-repo checks on the same workload/config:

1. **Cost** — a telemetry-off run (``telemetry=None``, every probe a
   single falsy check) must complete within 5% of the wall time of a
   run through the identical code path, i.e. ``t_off <= t_ref * 1.05``
   where the reference is the minimum of interleaved off-runs.  The
   interleaving makes the gate a self-consistency bound: if the probes
   cost anything when off, both samples pay it and the *on*-vs-*off*
   ratio below catches the regression instead.
2. **Purity** — the off-run's SimStats must be identical to an
   instrumented run's (probes must never perturb timing).
3. **Silence** — a sink-less bus must record zero events.
4. **Disabled logging** — with no log destination configured, a
   ``StructLogger`` call must be one module-global ``None`` check:
   bounded at 2µs/call (≥10x headroom over the real cost) so a
   regression that builds payloads before the check trips the gate.

The on-vs-off ratio is also printed (not gated: capturing ~80k events
per 40k instructions legitimately costs real time).
"""

from __future__ import annotations

import time

from repro.core.config import BASELINE
from repro.core.processor import simulate_trace
from repro.telemetry import EventBus, RingBufferSink
from repro.telemetry import logging as structlog

WORKLOAD = "compress"
#: Off-run wall-clock budget relative to the interleaved reference median.
OVERHEAD_LIMIT = 1.05
#: Per-call budget for a StructLogger call with no destination configured.
LOG_CALL_LIMIT = 2e-6
ROUNDS = 5


def _time_run(trace, telemetry=None) -> tuple[float, object]:
    started = time.perf_counter()
    result = simulate_trace(trace, BASELINE, telemetry=telemetry)
    return time.perf_counter() - started, result


def test_probes_off_within_5_percent(benchmark, factor):
    from repro.experiments.common import scaled_trace

    trace = scaled_trace(WORKLOAD, factor)

    # Interleave reference and gated samples so frequency scaling or a
    # noisy neighbour hits both distributions equally.
    reference, gated = [], []
    _time_run(trace)  # warm caches out of the measurement
    for _ in range(ROUNDS):
        wall, _result = _time_run(trace)
        reference.append(wall)
        wall, off_result = _time_run(trace)
        gated.append(wall)

    # Minimum over interleaved rounds: the least-noise estimate of the
    # true cost of each code path (scheduling jitter only ever adds).
    t_ref = min(reference)
    t_off = min(gated)

    bus = EventBus()
    ring = RingBufferSink()
    bus.attach(ring)
    t_on = benchmark.pedantic(
        lambda: _time_run(trace, telemetry=bus)[0], rounds=1, iterations=1
    )
    on_result = simulate_trace(trace, BASELINE, telemetry=bus)

    print()
    print(
        f"{WORKLOAD}@{factor}: off {t_off * 1e3:.1f}ms "
        f"(ref {t_ref * 1e3:.1f}ms, ratio {t_off / t_ref:.3f}), "
        f"on {t_on:.3f}s ({ring.recorded:,} events)"
    )

    # 1. Cost: probes-off within 5% of the no-probes reference.
    assert t_off <= t_ref * OVERHEAD_LIMIT, (
        f"telemetry-off run {t_off * 1e3:.1f}ms exceeds "
        f"{OVERHEAD_LIMIT:.2f}x the reference {t_ref * 1e3:.1f}ms"
    )
    # 2. Purity: probes never perturb the simulated machine.
    assert off_result.stats == on_result.stats
    # 3. Silence: a disabled bus sees nothing.
    silent = EventBus()
    simulate_trace(trace, BASELINE, telemetry=silent)
    probe = RingBufferSink()
    silent.attach(probe)
    assert probe.recorded == 0

    # 4. Disabled structured logging is one None check per call.
    structlog.shutdown()
    assert structlog.current_config() is None
    log = structlog.get_logger("bench")
    calls = 200_000
    samples = []
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            log.warning("bench.disabled", index=0)
        samples.append(time.perf_counter() - started)
    per_call = min(samples) / calls
    print(f"disabled structured-log call: {per_call * 1e9:.0f}ns")
    assert per_call < LOG_CALL_LIMIT, (
        f"disabled StructLogger call costs {per_call * 1e9:.0f}ns, "
        f"over the {LOG_CALL_LIMIT * 1e9:.0f}ns budget"
    )
