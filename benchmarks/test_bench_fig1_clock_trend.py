"""Figure 1 bench: ISSCC clock-frequency dataset + 40%/yr trend fit."""

from repro.experiments import fig1_clock_trend


def test_fig1_clock_trend(benchmark):
    result = benchmark(fig1_clock_trend.run)
    print()
    print(result.render())
    assert 25 <= result.trend.growth_percent <= 55
