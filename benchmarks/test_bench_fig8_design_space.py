"""Figure 8 bench: espresso's full cost/performance design space.

Paper shape: single-MSHR points (A) lie high; the large model (B) is a
plateau; prefetch separates C from D; the recommendation (E) nearly
matches B at much lower cost.
"""

from repro.experiments import fig8_design_space


def test_fig8_design_space(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig8_design_space.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    b = result.marked("B")[0]
    e = result.marked("E")[0]
    assert e.cost < b.cost
    assert e.cpi <= b.cpi * 1.15
    c = result.marked("C")[0]
    d = result.marked("D")[0]
    assert d.cpi < c.cpi
