"""Section 5 bench: baseline primary-cache hit rates vs the paper's
96.5% (I) / 95.4% (D)."""

from repro.experiments import hit_rates


def test_baseline_hit_rates(benchmark, factor):
    result = benchmark.pedantic(
        lambda: hit_rates.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert abs(result.icache_average - 0.965) < 0.035
    assert abs(result.dcache_average - 0.954) < 0.05
