"""Figure 4 bench: dual vs single issue x 3 models x {17, 35} latency.

Paper shape: dual issue helps the baseline/large models at 17 cycles;
large/dual is the best point; the gap narrows at 35 cycles.
"""

from repro.experiments import fig4_issue


def test_fig4_issue(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig4_issue.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    points = result.by_latency[17]
    best = min(points, key=lambda p: p.cpi_avg)
    assert best.label == "large/dual"
    assert result.dual_issue_gain(17, "large") > 0
