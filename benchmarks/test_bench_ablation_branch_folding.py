"""Ablation: branch folding (the pre-decoded NEXT field, Section 2).

With folding, a taken branch's target is fetched from the NEXT field
with no bubble; without it, every taken control transfer pays a
one-cycle front-end redirect (register jumps always pay it — their
targets cannot live in the predecode).
"""

from repro.core.config import TABLE1_MODELS
from repro.experiments.common import suite_stats


def run_ablation(factor):
    rows = {}
    for model in TABLE1_MODELS:
        folded = suite_stats(model.dual_issue(), "int", factor)
        unfolded = suite_stats(
            model.dual_issue().with_(branch_folding=False), "int", factor
        )
        rows[model.name] = (
            sum(s.cpi for s in folded.values()) / len(folded),
            sum(s.cpi for s in unfolded.values()) / len(unfolded),
        )
    return rows


def test_ablation_branch_folding(benchmark, factor):
    rows = benchmark.pedantic(
        lambda: run_ablation(factor), rounds=1, iterations=1
    )
    print()
    print("Ablation: branch folding on/off (avg CPI)")
    print(f"{'model':<10} {'folded':>8} {'unfolded':>9} {'penalty':>8}")
    for model, (folded, unfolded) in rows.items():
        print(f"{model:<10} {folded:>8.3f} {unfolded:>9.3f} "
              f"{(unfolded / folded - 1):>+8.1%}")
    for folded, unfolded in rows.values():
        assert unfolded >= folded  # folding can only help
