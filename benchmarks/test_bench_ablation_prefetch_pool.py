"""Ablation: shared vs split stream-buffer pool.

The paper attributes the small model's poor prefetch behaviour to its two
shared buffers thrashing between the I and D streams (Section 5.2).  A
split pool (dedicated halves) removes the thrash at the cost of
flexibility; this ablation quantifies the difference per model.
"""

from repro.core.config import TABLE1_MODELS
from repro.experiments.common import suite_stats


def run_ablation(factor):
    rows = {}
    for model in TABLE1_MODELS:
        shared = model.dual_issue()
        split = shared.with_(split_prefetch_pool=True)
        shared_stats = suite_stats(shared, suite="int", factor=factor)
        split_stats = suite_stats(split, suite="int", factor=factor)
        rows[model.name] = (
            sum(s.cpi for s in shared_stats.values()) / len(shared_stats),
            sum(s.cpi for s in split_stats.values()) / len(split_stats),
        )
    return rows


def test_ablation_prefetch_pool(benchmark, factor):
    rows = benchmark.pedantic(
        lambda: run_ablation(factor), rounds=1, iterations=1
    )
    print()
    print("Ablation: shared vs split stream-buffer pool (avg CPI)")
    print(f"{'model':<10} {'shared':>8} {'split':>8} {'delta':>8}")
    for model, (shared, split) in rows.items():
        print(f"{model:<10} {shared:>8.3f} {split:>8.3f} "
              f"{(split / shared - 1):>+8.1%}")
    # both organisations must produce sane results on every model
    for shared, split in rows.values():
        assert shared > 0 and split > 0
        assert abs(split / shared - 1) < 0.5
