"""Prepared-vs-tuple trace path: wall time over a multi-config sweep.

The columnar ``PreparedTrace`` exists to make sweeps cheaper: derived
per-record facts are computed once per trace instead of once per
configuration.  This bench times the same workload over several machine
configurations through both representations, asserts the results are
identical (the semantics-preservation contract), gates that the
prepared path never loses, and records both series — tagged with their
trace path — through the perf-history machinery.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import baseline_model, large_model, small_model
from repro.core.processor import simulate_trace
from repro.telemetry.baseline import PerfHistory, git_sha

#: One integer workload is enough: the sweep shape (many configs, one
#: trace) is what the columnar path optimises.
WORKLOAD = "espresso"


def _mini_sweep_configs():
    return [
        small_model(),
        baseline_model(),
        large_model(),
        baseline_model().with_(issue_width=1),
        baseline_model().with_(mem_latency=30),
    ]


def _sweep(trace) -> tuple[float, list]:
    """Simulate ``trace`` on every config; returns (wall, stats list)."""
    started = time.perf_counter()
    stats = [
        simulate_trace(trace, config).stats
        for config in _mini_sweep_configs()
    ]
    return time.perf_counter() - started, stats


def _record(factor: float, wall: float, stats, trace_path: str) -> dict:
    cycles = sum(s.cycles for s in stats)
    instructions = sum(s.instructions for s in stats)
    return {
        "git_sha": git_sha(),
        "recorded_at": time.time(),
        "workload": WORKLOAD,
        "factor": factor,
        "config": "mini-sweep/5-configs",
        "instructions": instructions,
        "sim_cycles": cycles,
        "wall_seconds": wall,
        "cycles_per_second": cycles / wall if wall > 0 else 0.0,
        "instructions_per_second": instructions / wall if wall > 0 else 0.0,
        "cache_hits": 0,
        "cache_misses": 0,
        "trace_path": trace_path,
    }


def test_prepared_path_never_loses(benchmark, factor, tmp_path):
    from repro.experiments.common import scaled_trace
    from repro.func.prepared import PreparedTrace, prepare_trace

    prepared = scaled_trace(WORKLOAD, factor)
    assert isinstance(prepared, PreparedTrace)
    records = prepared.to_records()

    tuple_wall, tuple_stats = _sweep(records)
    # A fresh preparation keeps the comparison honest: the timed region
    # includes materializing the hot-loop columns, exactly as a fresh
    # process would pay it on its first configuration.
    prepared_wall, prepared_stats = benchmark.pedantic(
        lambda: _sweep(prepare_trace(records, workload=WORKLOAD)),
        rounds=1,
        iterations=1,
    )

    # Semantics preservation across the whole sweep.
    assert prepared_stats == tuple_stats

    ratio = prepared_wall / tuple_wall
    print()
    print(
        f"{WORKLOAD} x {len(_mini_sweep_configs())} configs: "
        f"tuples {tuple_wall:.2f}s  prepared {prepared_wall:.2f}s  "
        f"({1 / ratio:.2f}x)"
    )

    # Both series land in a history file, tagged by path, so the ratio
    # is recorded with the same schema/validation as `aurora-sim perf`.
    history = PerfHistory(tmp_path / "BENCH_history.json")
    history.append(_record(factor, tuple_wall, tuple_stats, "tuples"))
    history.append(_record(factor, prepared_wall, prepared_stats, "prepared"))
    assert len(history.records()) == 2

    # Loose gate: the prepared path must never lose.  The win is
    # normally well clear of this; the margin only absorbs timer noise.
    assert prepared_wall <= tuple_wall * 1.05, (
        f"prepared path slower than tuples: {prepared_wall:.2f}s vs "
        f"{tuple_wall:.2f}s ({ratio:.2f}x)"
    )
