"""Table 6 bench: the three FPU issue policies over the FP suite.

Paper shape: ~12% average gain for single-issue out-of-order completion
and ~21% for dual issue over the fully serialised policy, with spice2g6,
alvinn and ora nearly flat and nasa7/hydro2d the big movers.
"""

from repro.core.config import FPIssuePolicy
from repro.experiments import table6_fpu_issue


def test_table6_fpu_issue_policies(benchmark, factor):
    result = benchmark.pedantic(
        lambda: table6_fpu_issue.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    single_gain = result.gain(FPIssuePolicy.SINGLE_ISSUE)
    dual_gain = result.gain(FPIssuePolicy.DUAL_ISSUE)
    print(f"single-OOC gain: {single_gain:+.1%} (paper +11.2%)")
    print(f"dual-OOC gain:   {dual_gain:+.1%} (paper +20.9%)")
    assert dual_gain >= single_gain > 0
