"""Figure 7 bench: MSHR-count effects.

Paper shape: the small model gains dramatically from a second MSHR; the
baseline gains a little from four; all models peak by four entries.
"""

from repro.experiments import fig7_mshr


def test_fig7_mshr_count(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig7_mshr.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.gain_from_variation("small") > 0
    for model in ("small", "baseline", "large"):
        sweep = result.sweep[model]
        assert sweep[4] <= sweep[1]
