"""Figure 5 bench: prefetch removal across models and latencies.

Paper shape: prefetch helps every model, helps more at the longer
latency, and improves worst-case CPI even more than the average.
"""

from repro.experiments import fig5_prefetch


def test_fig5_prefetch_removal(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig5_prefetch.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.prefetch_gain(17, "baseline") > 0
    assert result.prefetch_gain(35, "baseline") > result.prefetch_gain(
        17, "baseline"
    )
