"""Table 3 bench: integer I-stream prefetch hit rates per model."""

from repro.experiments import prefetch_tables


def test_table3_instruction_prefetch(benchmark, factor):
    result = benchmark.pedantic(
        lambda: prefetch_tables.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # paper average: ~58% for the instruction stream
    assert result.average("I") > 0.3
