"""Batched vs scalar kernel: wall time over a Figure 8-sized sweep.

The batched kernel exists to make multi-configuration sweeps cheaper:
one trace walk advances every machine instead of one walk per machine.
This bench times the same workload over the full Figure 8 design
catalogue (plus a +4-cycle-latency variant of every point, 58 configs
in all) through both kernels, asserts the per-config stats are
identical (the oracle contract), gates a >=2x sim-cycles/s win for the
batched kernel, and records both series — tagged with their kernel —
through the perf-history machinery.
"""

from __future__ import annotations

import time

from repro.core.kernel import simulate_many
from repro.experiments.fig8_design_space import _design_points
from repro.telemetry.baseline import BaselineError, PerfHistory, git_sha

#: One integer workload is enough: the sweep shape (many configs, one
#: trace) is what config batching optimises.
WORKLOAD = "espresso"
#: The acceptance gate runs at the CI smoke factor, not the bench-wide
#: FACTOR: the gate is about per-record overhead, not trace length.
GATE_FACTOR = 0.05
#: Minimum batched-over-scalar throughput ratio.
GATE_SPEEDUP = 2.0


def _grid():
    """The Figure 8 catalogue plus a slower-memory variant of each point."""
    catalogue = [config for _, config, _ in _design_points()]
    return catalogue + [
        config.with_latency(config.mem_latency + 4) for config in catalogue
    ]


def _record(factor: float, wall: float, stats, kernel: str) -> dict:
    cycles = sum(s.cycles for s in stats)
    instructions = sum(s.instructions for s in stats)
    return {
        "git_sha": git_sha(),
        "recorded_at": time.time(),
        "workload": WORKLOAD,
        "factor": factor,
        "config": "fig8-grid/58-configs",
        "instructions": instructions,
        "sim_cycles": cycles,
        "wall_seconds": wall,
        "cycles_per_second": cycles / wall if wall > 0 else 0.0,
        "instructions_per_second": instructions / wall if wall > 0 else 0.0,
        "cache_hits": 0,
        "cache_misses": 0,
        "trace_path": "prepared",
        "kernel": kernel,
    }


def test_batched_kernel_speedup(benchmark, tmp_path):
    from repro.experiments.common import scaled_trace

    trace = scaled_trace(WORKLOAD, GATE_FACTOR)
    configs = _grid()
    assert len(configs) >= 8  # the gate is meaningless on tiny batches

    started = time.perf_counter()
    scalar = simulate_many(trace, configs, kernel="scalar")
    scalar_wall = time.perf_counter() - started

    batched_wall, batched = benchmark.pedantic(
        lambda: _timed_batch(trace, configs), rounds=1, iterations=1
    )

    # The oracle contract over the whole grid.
    assert [r.stats for r in batched] == [r.stats for r in scalar]

    scalar_stats = [r.stats for r in scalar]
    batched_stats = [r.stats for r in batched]
    scalar_record = _record(GATE_FACTOR, scalar_wall, scalar_stats, "scalar")
    batched_record = _record(
        GATE_FACTOR, batched_wall, batched_stats, "batched"
    )

    # Both series land in a history file, tagged by kernel, with the
    # same schema/validation as `aurora-sim perf`; the two kernels are
    # distinct series, so a cross-kernel regression check must refuse.
    history = PerfHistory(tmp_path / "BENCH_history.json")
    history.append(scalar_record)
    history.append(batched_record)
    assert len(history.records()) == 2
    history.seed_baseline(scalar_record)
    try:
        history.compare(batched_record)
    except BaselineError as error:
        assert "kernel" in str(error)
    else:
        raise AssertionError(
            "cross-kernel perf comparison should refuse: different series"
        )

    ratio = (
        batched_record["cycles_per_second"]
        / scalar_record["cycles_per_second"]
    )
    print()
    print(
        f"{WORKLOAD} x {len(configs)} configs: "
        f"scalar {scalar_wall:.2f}s  batched {batched_wall:.2f}s  "
        f"({ratio:.2f}x sim-cycles/s)"
    )
    assert ratio >= GATE_SPEEDUP, (
        f"batched kernel below the {GATE_SPEEDUP:.0f}x gate: "
        f"{ratio:.2f}x over {len(configs)} configs"
    )


def _timed_batch(trace, configs):
    started = time.perf_counter()
    results = simulate_many(trace, configs, kernel="batched")
    return time.perf_counter() - started, results
