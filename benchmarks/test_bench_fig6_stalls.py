"""Figure 6 bench: stall-penalty breakdown per model.

Paper shape: the small model is LSU-bound (one MSHR); the base and large
models are dominated by I-cache and load stalls; the ROB matters little.
"""

from repro.core.stats import StallKind
from repro.experiments import fig6_stalls


def test_fig6_stall_breakdown(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig6_stalls.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.dominant("small") is StallKind.LSU
    assert result.total_cpi["small"] > result.total_cpi["large"]
