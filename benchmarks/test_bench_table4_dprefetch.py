"""Table 4 bench: integer D-stream prefetch hit rates per model."""

from repro.experiments import prefetch_tables


def test_table4_data_prefetch(benchmark, factor):
    result = benchmark.pedantic(
        lambda: prefetch_tables.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # the data stream hits far less than the instruction stream
    assert result.average("D") < result.average("I")
