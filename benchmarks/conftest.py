"""Benchmark-harness configuration.

Each benchmark regenerates one paper table/figure at ``FACTOR`` times the
default workload sizes (full-size runs live in
``python -m repro.experiments.run_all``).  Traces are pre-generated once
per session so pytest-benchmark times the *timing simulation*, not the
functional warm-up.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

#: Workload-size factor for benchmark runs (1.0 = the paper-scale runs).
FACTOR = 0.25


@pytest.fixture(scope="session", autouse=True)
def warm_traces():
    """Pre-build every workload trace so benchmarks time simulation only."""
    from repro.experiments.common import scaled_trace
    from repro.workloads.registry import FP_SUITE, INTEGER_SUITE

    for name in INTEGER_SUITE + FP_SUITE:
        scaled_trace(name, FACTOR)
    yield


@pytest.fixture(scope="session")
def factor():
    return FACTOR
