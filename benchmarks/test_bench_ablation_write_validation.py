"""Ablation: write validation (the write cache's micro-TLB page check).

With validation on, a store to a page not resident in the write cache
pays an MMU round trip before it may retire (paper Section 2.3).  Turning
it off models an idealised on-chip MMU; the delta is the price of the
off-chip MMU partitioning that the micro-TLB trick mostly hides.
"""

from repro.core.config import BASELINE
from repro.experiments.common import suite_stats


def run_ablation(factor):
    with_validation = suite_stats(BASELINE.dual_issue(), "int", factor)
    without = suite_stats(
        BASELINE.dual_issue().with_(write_validation=False), "int", factor
    )
    return {
        name: (with_validation[name].cpi, without[name].cpi)
        for name in with_validation
    }


def test_ablation_write_validation(benchmark, factor):
    rows = benchmark.pedantic(
        lambda: run_ablation(factor), rounds=1, iterations=1
    )
    print()
    print("Ablation: write validation on/off (baseline model CPI)")
    print(f"{'benchmark':<10} {'validate':>9} {'ideal MMU':>10} {'delta':>8}")
    for name, (on, off) in rows.items():
        print(f"{name:<10} {on:>9.3f} {off:>10.3f} {(on / off - 1):>+8.1%}")
    for on, off in rows.values():
        assert on >= off * 0.999  # validation can only cost cycles
