"""Figure 9(a-c) bench: FPU queue and reorder-buffer sizing.

Paper shape: instruction-queue benefit flattens at 3 entries (single
issue); two load-queue entries suffice; ROB sensitivity fades past ~6.
"""

from repro.experiments import fig9_fpu

_SWEEPS = ("a_instruction_queue", "b_load_queue", "c_reorder_buffer")


def test_fig9_fpu_queues(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig9_fpu.run(factor=factor, sweeps=_SWEEPS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    iq = {p.value: p.cpi_avg for p in result.sweeps["a_instruction_queue"]}
    assert iq[1] >= iq[3] * 0.999
    assert abs(iq[3] - iq[5]) / iq[5] < 0.05
    lq = {p.value: p.cpi_avg for p in result.sweeps["b_load_queue"]}
    assert abs(lq[2] - lq[5]) / lq[5] < 0.05
