"""Tables 1-2 bench: the RBE cost model over the paper's models."""

from repro.experiments import table2_cost


def test_table2_cost_model(benchmark):
    report = benchmark(table2_cost.run)
    print()
    print(report.render())
    assert report.total("small/single") < report.total("large/dual")
