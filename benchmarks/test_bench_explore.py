"""Guided exploration vs exhaustive sweep over the Figure 8 grid.

The explorer exists to spend simulations only where the Pareto frontier
might be: calibrate the analytic CPI model from a dozen anchor runs,
then simulate just the predicted-frontier band.  This bench runs both
the exhaustive 58-config sweep and the guided exploration at the CI
smoke factor, gates the acceptance criteria (exact frontier recovery,
at most half the grid simulated, model error within budget), and
records the guided run as a ``mode="explore"`` perf-history series.
"""

from __future__ import annotations

import time

from repro.core.kernel import simulate_many
from repro.cost.rbe import total_cost
from repro.explore import explore, frontier_indices, get_space
from repro.telemetry.baseline import BaselineError, PerfHistory, git_sha

WORKLOAD = "espresso"
#: The acceptance gates run at the CI smoke factor: frontier recovery
#: and simulated fraction are properties of the search, not trace length.
GATE_FACTOR = 0.05
#: At most this fraction of the grid may be simulated (calibration
#: included) — the point of the pre-filter.
GATE_FRACTION = 0.5
#: Mean relative CPI error budget for the model over the full grid.
GATE_MEAN_REL_ERROR = 0.15


def _record(result, wall: float) -> dict:
    return {
        "git_sha": git_sha(),
        "recorded_at": time.time(),
        "workload": WORKLOAD,
        "factor": GATE_FACTOR,
        "config": "space:fig8",
        "instructions": result.sim_instructions,
        "sim_cycles": result.sim_cycles,
        "wall_seconds": wall,
        "cycles_per_second": (
            result.sim_cycles / wall if wall > 0 else 0.0
        ),
        "instructions_per_second": (
            result.sim_instructions / wall if wall > 0 else 0.0
        ),
        "cache_hits": 0,
        "cache_misses": 0,
        "trace_path": "prepared",
        "kernel": result.kernel,
        "mode": "explore",
        "configs_considered": result.configs_considered,
        "configs_simulated": result.configs_simulated,
        "model_mean_rel_error": result.model.mean_rel_error,
    }


def test_guided_exploration_recovers_frontier(benchmark, tmp_path):
    from repro.experiments.common import scaled_trace
    from repro.explore.model import CPIEstimator

    trace = scaled_trace(WORKLOAD, GATE_FACTOR)
    candidates = get_space("fig8")
    assert len(candidates) == 58

    exhaustive = simulate_many(trace, [c.config for c in candidates])
    stats = [r.stats for r in exhaustive]
    live = [(c, s) for c, s in zip(candidates, stats) if s.instructions]
    chosen = frontier_indices(
        [(total_cost(c.config), s.cpi) for c, s in live]
    )
    true_frontier = sorted(live[i][0].label for i in chosen)

    wall, result = benchmark.pedantic(
        lambda: _timed_explore(candidates, trace), rounds=1, iterations=1
    )

    # Acceptance gates: exact recovery, at most half the grid, model
    # within its error budget over the *entire* grid.
    assert sorted(result.frontier_labels()) == true_frontier
    assert result.simulated_fraction <= GATE_FRACTION, (
        f"explorer simulated {result.configs_simulated} of "
        f"{result.configs_considered} configs"
    )
    assert not result.budget_exhausted
    grid_model = CPIEstimator.calibrate(trace).validate(
        [(c.config, s) for c, s in zip(candidates, stats)]
    )
    assert grid_model.mean_rel_error <= GATE_MEAN_REL_ERROR

    # The guided run is a mode="explore" perf series: it appends and
    # seeds like any other record, and a cross-mode check must refuse.
    record = _record(result, wall)
    history = PerfHistory(tmp_path / "BENCH_history.json")
    history.append(record)
    history.seed_baseline(record)
    check = history.compare(record)
    assert not check.regressed

    simulate_record = dict(record, mode="simulate", config="fig8-grid")
    try:
        history.compare(simulate_record)
    except BaselineError as error:
        assert "mode" in str(error)
    else:
        raise AssertionError(
            "cross-mode perf comparison should refuse: different series"
        )

    print()
    print(
        f"{WORKLOAD} x {result.configs_considered} configs: "
        f"simulated {result.configs_simulated} "
        f"({result.simulated_fraction * 100:.0f}%) in {wall:.2f}s; "
        f"grid model mean error {grid_model.mean_rel_error * 100:.1f}%"
    )


def _timed_explore(candidates, trace):
    started = time.perf_counter()
    result = explore(
        candidates, trace, workload=WORKLOAD, factor=GATE_FACTOR
    )
    return time.perf_counter() - started, result
