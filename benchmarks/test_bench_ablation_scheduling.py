"""Ablation: static load-use scheduling (the paper's future-work pass).

The paper's conclusion: "In the large machines, most stalls were caused
by the three-cycle latency of the pipelined data cache.  Better compiler
scheduling could possibly remove some of this penalty."  The benchmarks
were compiled with *no* rescheduling.  This bench applies the
`repro.isa.scheduler` load-use pass to every integer kernel and measures
how much of the large model's load-stall penalty it recovers.
"""

from repro.core.config import LARGE
from repro.core.processor import simulate_trace
from repro.core.stats import StallKind
from repro.func.machine import run_program
from repro.isa.scheduler import schedule_load_use
from repro.workloads.registry import INTEGER_SUITE, build_program, get_spec


def run_ablation(factor):
    rows = {}
    for name in INTEGER_SUITE:
        scale = max(8, int(get_spec(name).default_scale * factor))
        if name == "compress":
            scale = max(scale, 1100)
        program = build_program(name, scale)
        scheduled, moves = schedule_load_use(program)
        base_trace = run_program(program, max_instructions=20_000_000).trace
        sched_trace = run_program(scheduled, max_instructions=20_000_000).trace
        config = LARGE.dual_issue()
        base = simulate_trace(base_trace, config).stats
        after = simulate_trace(sched_trace, config).stats
        rows[name] = (moves, base, after)
    return rows


def test_ablation_load_use_scheduling(benchmark, factor):
    rows = benchmark.pedantic(
        lambda: run_ablation(factor), rounds=1, iterations=1
    )
    print()
    print("Ablation: static load-use scheduling (large model, dual issue)")
    print(f"{'benchmark':<10} {'moves':>6} {'CPI before':>11} {'CPI after':>10} "
          f"{'load-stall CPI':>15}")
    for name, (moves, base, after) in rows.items():
        print(
            f"{name:<10} {moves:>6} {base.cpi:>11.3f} {after.cpi:>10.3f} "
            f"{base.stall_cpi(StallKind.LOAD):>7.3f} -> "
            f"{after.stall_cpi(StallKind.LOAD):.3f}"
        )
    for _, base, after in rows.values():
        assert after.cycles <= base.cycles * 1.01  # never hurts
