"""Figure 9(d-g) bench: FPU functional-unit latency sweeps plus the
Section 5.10 de-pipelining ablation.

Paper shape: add/multiply latency moves CPI ~17% over 1-5 cycles; divide
latency moves it ~8% over 10-30 cycles (ora most affected); conversion
latency is immaterial; de-pipelining add/multiply costs a few percent
CPI for ~25% unit-area savings.
"""

from repro.experiments import fig9_fpu

_SWEEPS = ("d_add_latency", "e_mul_latency", "f_div_latency", "g_cvt_latency")


def test_fig9_fpu_latencies(benchmark, factor):
    result = benchmark.pedantic(
        lambda: fig9_fpu.run(factor=factor, sweeps=_SWEEPS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # higher latency never helps
    for sweep in _SWEEPS:
        cpis = [p.cpi_avg for p in result.sweeps[sweep]]
        assert cpis[-1] >= cpis[0] * 0.999
    # conversions are immaterial; the divide sweep is not
    assert result.sensitivity("g_cvt_latency") < 0.02
    assert result.sensitivity("f_div_latency") > 0.02
    assert 0.0 <= result.depipelining_penalty() < 0.25
