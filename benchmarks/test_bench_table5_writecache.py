"""Table 5 bench: write-cache hit rates + store-traffic reduction.

Paper shape: hit rates grow small -> large; off-chip store traffic drops
to 44% / 30% / 22% of store instructions.
"""

from repro.experiments import writecache_table


def test_table5_writecache(benchmark, factor):
    result = benchmark.pedantic(
        lambda: writecache_table.run(factor=factor), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert (
        result.traffic_ratio["small"]
        > result.traffic_ratio["baseline"]
        > result.traffic_ratio["large"]
    )
    assert result.average_hit_rate("large") > result.average_hit_rate("small")
