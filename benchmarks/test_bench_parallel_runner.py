"""Parallel-runner bench: serial sweep vs ``jobs=2`` on the same work.

Times the experiment sweep end-to-end through ResilientRunner in both
modes with a pre-warmed persistent trace cache, so the comparison
measures execution backends rather than trace construction.  Parallel
wall time must come in under serial: the experiments are
timing-simulation bound and the process pool runs them on separate
cores outside the GIL.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.run_all import EXPERIMENTS
from repro.robustness.runner import ResilientRunner

#: Several comparably-sized experiments, so two workers stay busy.
SWEEP = ("fig4", "fig5", "table3_4", "hit_rates")
BENCH_FACTOR = 0.1


@pytest.fixture(scope="module")
def warm_disk_cache(tmp_path_factory):
    """Route the trace cache to a tmp dir and warm it for the sweep."""
    from repro.experiments.common import scaled_trace
    from repro.workloads import trace_cache
    from repro.workloads.registry import INTEGER_SUITE

    previous = trace_cache._default
    trace_cache._default = trace_cache.TraceCache(
        tmp_path_factory.mktemp("bench-trace-cache")
    )
    for name in INTEGER_SUITE:
        scaled_trace(name, BENCH_FACTOR)
    yield
    trace_cache._default = previous


def _sweep(jobs: int, out_dir) -> float:
    experiments = {exp_id: EXPERIMENTS[exp_id] for exp_id in SWEEP}
    runner = ResilientRunner(jobs=jobs)
    started = time.monotonic()
    _results, report = runner.run(
        experiments, factor=BENCH_FACTOR, out_dir=out_dir
    )
    wall = time.monotonic() - started
    assert report.ok
    return wall


def test_parallel_sweep_beats_serial(benchmark, warm_disk_cache, tmp_path):
    serial_wall = _sweep(jobs=1, out_dir=tmp_path / "serial")
    parallel_wall = benchmark.pedantic(
        lambda: _sweep(jobs=2, out_dir=tmp_path / "parallel"),
        rounds=1,
        iterations=1,
    )
    cores = len(os.sched_getaffinity(0))
    print()
    print(
        f"serial {serial_wall:.2f}s  parallel(jobs=2) {parallel_wall:.2f}s  "
        f"speedup {serial_wall / parallel_wall:.2f}x  ({cores} core(s))"
    )
    # Identical reports, regardless of backend.
    for exp_id in SWEEP:
        serial_text = (tmp_path / "serial" / f"{exp_id}.txt").read_text()
        parallel_text = (tmp_path / "parallel" / f"{exp_id}.txt").read_text()
        assert serial_text == parallel_text
    if cores >= 2:
        # Two workers on >=2 cores must beat the serial sweep outright.
        assert parallel_wall < serial_wall
    else:
        # A single core cannot overlap CPU-bound work; only check that
        # the process-pool machinery keeps its overhead bounded.
        assert parallel_wall < serial_wall * 1.35
